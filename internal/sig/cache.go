package sig

import (
	"crypto/sha256"
	"encoding/binary"
	"runtime"
	"sync/atomic"

	"whopay/internal/store"
)

// Cached decorates a Scheme with the verification fast path (DESIGN.md §9).
// Table 2 of the paper shows signature verification dominating per-transfer
// cost, and WhoPay re-verifies the same immutable artifacts — broker coin
// certs, bindings, group-signature credentials — on every hop, deposit,
// sync, and audit. Cached removes the repeated work three ways:
//
//  1. Decoded public keys are memoized in a bounded sharded LRU, so a
//     KeyDecoder scheme (ECDSA) pays the SEC1 parse + on-curve check once
//     per key instead of once per Verify.
//  2. *Positive* verify results are memoized keyed by a SHA-256 over
//     (epoch ‖ key-generation ‖ pub ‖ msg ‖ sig). Sound because Verify is a
//     deterministic predicate over immutable bytes: the same triple can
//     never change from valid to invalid except by revocation, which bumps
//     the generation (InvalidateKey) or epoch (Invalidate) and so changes
//     the cache key. Negative results are NEVER cached — a retried or
//     corrected message must re-run real crypto.
//  3. VerifyBatch fans independent checks out across a small worker pool
//     for the multi-signature call sites (deposit chain checks, layered
//     per-layer walks, credential + member pairs).
//
// Sign and GenerateKey pass straight through — only verification is a pure
// function of its inputs. A Null inner scheme bypasses the cache entirely:
// Null verifies are already two SHA-256s, and the simulator depends on every
// operation actually executing. Cached is safe for concurrent use.
type Cached struct {
	inner   Scheme
	dec     KeyDecoder // nil when inner has no cacheable decode step
	bypass  bool       // inner is Null: pass everything through
	workers int

	keys    *store.LRU[string, any]        // pub bytes → decoded key
	results *store.LRU[string, struct{}]   // result digest → known-valid
	epoch   atomic.Uint64                  // bumped by Invalidate
	gens    *store.Sharded[string, uint64] // pub → generation (revocations only)

	// hit/miss tallies (obs exposition); not counted on the bypass path,
	// where the cache does nothing worth measuring.
	hits      atomic.Int64
	misses    atomic.Int64
	keyHits   atomic.Int64
	keyMisses atomic.Int64
}

// CacheStats is a point-in-time read of the cache's hit/miss tallies.
type CacheStats struct {
	Hits, Misses       int64 // memoized-result cache
	KeyHits, KeyMisses int64 // decoded-key cache
}

// Stats returns the current hit/miss tallies. Safe for concurrent use.
func (c *Cached) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		KeyHits:   c.keyHits.Load(),
		KeyMisses: c.keyMisses.Load(),
	}
}

var (
	_ Scheme        = (*Cached)(nil)
	_ BatchVerifier = (*Cached)(nil)
)

// CacheOptions bounds and tunes a Cached scheme. Zero values select
// defaults.
type CacheOptions struct {
	// KeyCapacity bounds the decoded-key LRU (default 4096 keys — each
	// entry is a parsed P-256 point, so this is a few hundred KB).
	KeyCapacity int
	// ResultCapacity bounds the positive-verify LRU (default 65536
	// digests, ~2 MB of 32-byte keys).
	ResultCapacity int
	// Shards is the lock-domain count per LRU (default store.DefaultShards).
	Shards int
	// Workers caps VerifyBatch fan-out (default GOMAXPROCS; 1 forces
	// sequential batches).
	Workers int
}

// NewCached wraps inner with the verification fast path. The wrapper keeps
// inner's Name so scheme identity is transparent to callers and wire
// formats.
func NewCached(inner Scheme, opts CacheOptions) *Cached {
	if opts.KeyCapacity <= 0 {
		opts.KeyCapacity = 4096
	}
	if opts.ResultCapacity <= 0 {
		opts.ResultCapacity = 65536
	}
	if opts.Shards <= 0 {
		opts.Shards = store.DefaultShards
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	dec, _ := inner.(KeyDecoder)
	return &Cached{
		inner:   inner,
		dec:     dec,
		bypass:  inner.Name() == "null",
		workers: opts.Workers,
		keys:    store.NewLRU[string, any](opts.KeyCapacity, opts.Shards, store.StringHash[string]),
		results: store.NewLRU[string, struct{}](opts.ResultCapacity, opts.Shards, store.StringHash[string]),
		gens:    store.NewSharded[string, uint64](opts.Shards, store.StringHash[string]),
	}
}

// NewCachedSuite wraps s.Scheme with NewCached, keeping the recorder. It
// returns the new suite and the cache handle for invalidation hooks.
// Recording stays at the Suite layer, so cached verifies are still counted:
// the cache changes what a verify costs, not how many the protocol performs.
func NewCachedSuite(s Suite, opts CacheOptions) (Suite, *Cached) {
	c := NewCached(s.Scheme, opts)
	return Suite{Scheme: c, Rec: s.Rec}, c
}

// Name implements Scheme. It reports the inner scheme's name: Cached is an
// execution strategy, not a different algorithm.
func (c *Cached) Name() string { return c.inner.Name() }

// GenerateKey implements Scheme by delegation.
func (c *Cached) GenerateKey() (KeyPair, error) { return c.inner.GenerateKey() }

// Sign implements Scheme by delegation — signatures may be randomized, so
// there is nothing sound to memoize.
func (c *Cached) Sign(priv PrivateKey, msg []byte) ([]byte, error) {
	return c.inner.Sign(priv, msg)
}

// Verify implements Scheme. A memoized positive result short-circuits; a
// miss runs real crypto (through the decoded-key cache when available) and
// memoizes only success.
func (c *Cached) Verify(pub PublicKey, msg []byte, sigBytes []byte) error {
	if c.bypass {
		return c.inner.Verify(pub, msg, sigBytes)
	}
	rk := c.resultKey(pub, msg, sigBytes)
	if _, ok := c.results.Get(rk); ok {
		c.hits.Add(1)
		return nil
	}
	c.misses.Add(1)
	if err := c.verifyMiss(pub, msg, sigBytes); err != nil {
		return err
	}
	c.results.Add(rk, struct{}{})
	return nil
}

// verifyMiss performs a real verification, going through the decoded-key
// cache when the scheme exposes one.
func (c *Cached) verifyMiss(pub PublicKey, msg []byte, sigBytes []byte) error {
	if c.dec == nil {
		return c.inner.Verify(pub, msg, sigBytes)
	}
	ck := string(pub)
	if dk, ok := c.keys.Get(ck); ok {
		c.keyHits.Add(1)
		return c.dec.VerifyDecoded(dk, msg, sigBytes)
	}
	c.keyMisses.Add(1)
	dk, err := c.dec.DecodePublic(pub)
	if err != nil {
		// Malformed keys are not cached: the decode error IS the
		// verification result and it recurs cheaply.
		return err
	}
	c.keys.Add(ck, dk)
	return c.dec.VerifyDecoded(dk, msg, sigBytes)
}

// VerifyBatch implements BatchVerifier, fanning jobs out across the worker
// pool. Each job takes the same hit/miss path as Verify, so a batch warms
// the cache for the next one.
func (c *Cached) VerifyBatch(jobs []VerifyJob) []error {
	errs := make([]error, len(jobs))
	if len(jobs) == 0 {
		return errs
	}
	if c.bypass || c.workers <= 1 || len(jobs) == 1 {
		for i, j := range jobs {
			errs[i] = c.Verify(j.Pub, j.Msg, j.Sig)
		}
		return errs
	}
	fanOut(func(j VerifyJob) error { return c.Verify(j.Pub, j.Msg, j.Sig) }, jobs, c.workers, errs)
	return errs
}

// InvalidateKey forgets everything memoized about pub: its decoded form and,
// by bumping the key's generation, every positive verify result involving
// it (stale digests become unreachable and age out of the LRU). Call it when
// a key is revoked — e.g. a group credential whose serial lands on the CRL.
func (c *Cached) InvalidateKey(pub PublicKey) {
	if c.bypass {
		return
	}
	c.gens.Compute(string(pub), func(cur uint64, _ bool) (uint64, store.Op) {
		return cur + 1, store.OpSet
	})
	c.keys.Remove(string(pub))
}

// Invalidate drops the entire cache — decoded keys and memoized results —
// and bumps the epoch so in-flight writers with pre-bump cache keys cannot
// resurrect stale entries. Call it on group-key rotation.
func (c *Cached) Invalidate() {
	if c.bypass {
		return
	}
	c.epoch.Add(1)
	c.results.Purge()
	c.keys.Purge()
}

// ResultLen reports the number of memoized positive results (tests and
// metrics).
func (c *Cached) ResultLen() int { return c.results.Len() }

// KeyLen reports the number of memoized decoded keys (tests and metrics).
func (c *Cached) KeyLen() int { return c.keys.Len() }

// resultKey builds the memoization digest. Every variable-length field is
// length-prefixed so (pub, msg, sig) boundaries are unambiguous, and the
// epoch and per-key generation are mixed in so invalidation re-keys the
// space instead of racing deletions against concurrent inserts.
func (c *Cached) resultKey(pub PublicKey, msg, sigBytes []byte) string {
	gen, _ := c.gens.Get(string(pub))
	h := sha256.New()
	var buf [8]byte
	h.Write([]byte("whopay/sig/result-cache/1"))
	binary.BigEndian.PutUint64(buf[:], c.epoch.Load())
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], gen)
	h.Write(buf[:])
	for _, field := range [][]byte{pub, msg, sigBytes} {
		binary.BigEndian.PutUint64(buf[:], uint64(len(field)))
		h.Write(buf[:])
		h.Write(field)
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return string(out[:])
}
