package sig

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// countingScheme wraps a Scheme (and its KeyDecoder, when present) with
// call counters, so tests can observe how much real crypto a Cached wrapper
// actually runs.
type countingScheme struct {
	inner    Scheme
	dec      KeyDecoder
	verifies atomic.Int64
	decodes  atomic.Int64
}

func newCountingScheme(inner Scheme) *countingScheme {
	dec, _ := inner.(KeyDecoder)
	return &countingScheme{inner: inner, dec: dec}
}

func (c *countingScheme) Name() string                  { return c.inner.Name() }
func (c *countingScheme) GenerateKey() (KeyPair, error) { return c.inner.GenerateKey() }
func (c *countingScheme) Sign(priv PrivateKey, msg []byte) ([]byte, error) {
	return c.inner.Sign(priv, msg)
}
func (c *countingScheme) Verify(pub PublicKey, msg []byte, sigBytes []byte) error {
	c.verifies.Add(1)
	return c.inner.Verify(pub, msg, sigBytes)
}
func (c *countingScheme) DecodePublic(pub PublicKey) (any, error) {
	c.decodes.Add(1)
	return c.dec.DecodePublic(pub)
}
func (c *countingScheme) VerifyDecoded(key any, msg, sigBytes []byte) error {
	c.verifies.Add(1)
	return c.dec.VerifyDecoded(key, msg, sigBytes)
}

func signedTriple(t testing.TB, scheme Scheme) (KeyPair, []byte, []byte) {
	t.Helper()
	kp, err := scheme.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("cached-suite test message")
	sigBytes, err := scheme.Sign(kp.Private, msg)
	if err != nil {
		t.Fatal(err)
	}
	return kp, msg, sigBytes
}

// TestCachedMemoizesPositive: a repeat verify of the same (pub, msg, sig)
// triple is served from the memo — zero additional real crypto.
func TestCachedMemoizesPositive(t *testing.T) {
	cs := newCountingScheme(ECDSA{})
	c := NewCached(cs, CacheOptions{})
	kp, msg, sigBytes := signedTriple(t, ECDSA{})

	for i := 0; i < 5; i++ {
		if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
			t.Fatalf("verify %d: %v", i, err)
		}
	}
	if got := cs.verifies.Load(); got != 1 {
		t.Fatalf("real verifies = %d, want 1 (memoized)", got)
	}
	if c.ResultLen() != 1 {
		t.Fatalf("ResultLen = %d", c.ResultLen())
	}
}

// TestCachedNegativeNotCached: failed verifies always re-run real crypto
// and never enter the memo.
func TestCachedNegativeNotCached(t *testing.T) {
	cs := newCountingScheme(ECDSA{})
	c := NewCached(cs, CacheOptions{})
	kp, msg, sigBytes := signedTriple(t, ECDSA{})
	bad := append([]byte(nil), sigBytes...)
	bad[len(bad)-1] ^= 0xFF

	for i := 0; i < 3; i++ {
		if err := c.Verify(kp.Public, msg, bad); err == nil {
			t.Fatal("tampered signature verified")
		}
	}
	if got := cs.verifies.Load(); got != 3 {
		t.Fatalf("real verifies = %d, want 3 (negatives not memoized)", got)
	}
	if c.ResultLen() != 0 {
		t.Fatalf("ResultLen = %d after only failures", c.ResultLen())
	}
}

// TestCachedDecodedKeyReused: distinct messages under one key parse the key
// once; the parse survives even though each signature is new.
func TestCachedDecodedKeyReused(t *testing.T) {
	cs := newCountingScheme(ECDSA{})
	c := NewCached(cs, CacheOptions{})
	kp, err := ECDSA{}.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		msg := []byte(fmt.Sprintf("message %d", i))
		sigBytes, err := ECDSA{}.Sign(kp.Private, msg)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
			t.Fatal(err)
		}
	}
	if got := cs.decodes.Load(); got != 1 {
		t.Fatalf("key decodes = %d, want 1", got)
	}
	if got := cs.verifies.Load(); got != 4 {
		t.Fatalf("real verifies = %d, want 4 (distinct messages)", got)
	}
	if c.KeyLen() != 1 {
		t.Fatalf("KeyLen = %d", c.KeyLen())
	}
}

// TestCachedMalformedKeyNotCached: a key that fails to decode is rejected
// every time and never occupies a cache slot.
func TestCachedMalformedKeyNotCached(t *testing.T) {
	c := NewCached(ECDSA{}, CacheOptions{})
	junk := PublicKey(make([]byte, 65)) // right length, not on curve
	junk[0] = 4
	for i := 0; i < 2; i++ {
		if err := c.Verify(junk, []byte("m"), []byte("s")); err == nil {
			t.Fatal("malformed key verified")
		}
	}
	if c.KeyLen() != 0 || c.ResultLen() != 0 {
		t.Fatalf("malformed key cached: keys=%d results=%d", c.KeyLen(), c.ResultLen())
	}
}

// TestCachedInvalidateKey: revoking one key forgets its decoded form and
// makes its memoized results unreachable, without touching other keys.
func TestCachedInvalidateKey(t *testing.T) {
	cs := newCountingScheme(ECDSA{})
	c := NewCached(cs, CacheOptions{})
	kp1, msg1, sig1 := signedTriple(t, ECDSA{})
	kp2, msg2, sig2 := signedTriple(t, ECDSA{})
	if err := c.Verify(kp1.Public, msg1, sig1); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(kp2.Public, msg2, sig2); err != nil {
		t.Fatal(err)
	}
	before := cs.verifies.Load()

	c.InvalidateKey(kp1.Public)

	// kp1 must re-run real crypto; kp2 must still hit the memo.
	if err := c.Verify(kp1.Public, msg1, sig1); err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(kp2.Public, msg2, sig2); err != nil {
		t.Fatal(err)
	}
	if got := cs.verifies.Load(); got != before+1 {
		t.Fatalf("real verifies after InvalidateKey = %d, want %d", got, before+1)
	}
}

// TestCachedInvalidate: the epoch bump empties everything.
func TestCachedInvalidate(t *testing.T) {
	cs := newCountingScheme(ECDSA{})
	c := NewCached(cs, CacheOptions{})
	kp, msg, sigBytes := signedTriple(t, ECDSA{})
	if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
		t.Fatal(err)
	}
	c.Invalidate()
	if c.ResultLen() != 0 || c.KeyLen() != 0 {
		t.Fatalf("cache not empty after Invalidate: results=%d keys=%d", c.ResultLen(), c.KeyLen())
	}
	before := cs.verifies.Load()
	if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
		t.Fatal(err)
	}
	if got := cs.verifies.Load(); got != before+1 {
		t.Fatalf("verify after Invalidate did not run real crypto")
	}
}

// TestCachedNullBypass: the simulation scheme passes straight through —
// nothing is cached and every operation actually executes.
func TestCachedNullBypass(t *testing.T) {
	c := NewCached(NewNull(7), CacheOptions{})
	kp, msg, sigBytes := signedTriple(t, NewNull(7))
	for i := 0; i < 3; i++ {
		if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
			t.Fatal(err)
		}
	}
	if c.ResultLen() != 0 || c.KeyLen() != 0 {
		t.Fatalf("null scheme was cached: results=%d keys=%d", c.ResultLen(), c.KeyLen())
	}
}

// TestCachedResultBound: the result memo is bounded by its LRU capacity.
func TestCachedResultBound(t *testing.T) {
	c := NewCached(NewNull(9), CacheOptions{})
	c.bypass = false // force caching of the cheap null verifies
	kp, err := NewNull(9).GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	bound := c.results.Cap()
	for i := 0; i < bound+500; i++ {
		msg := []byte(fmt.Sprintf("msg %d", i))
		sigBytes, _ := NewNull(9).Sign(kp.Private, msg)
		if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ResultLen(); got > bound {
		t.Fatalf("ResultLen %d exceeds bound %d", got, bound)
	}
}

// TestVerifyBatchAligned: batch results are index-aligned with jobs, valid
// and invalid mixed.
func TestVerifyBatchAligned(t *testing.T) {
	c := NewCached(ECDSA{}, CacheOptions{Workers: 4})
	kp, msg, sigBytes := signedTriple(t, ECDSA{})
	bad := append([]byte(nil), sigBytes...)
	bad[0] ^= 0xFF
	jobs := []VerifyJob{
		{Pub: kp.Public, Msg: msg, Sig: sigBytes},
		{Pub: kp.Public, Msg: msg, Sig: bad},
		{Pub: kp.Public, Msg: []byte("other"), Sig: sigBytes},
		{Pub: kp.Public, Msg: msg, Sig: sigBytes},
	}
	errs := c.VerifyBatch(jobs)
	if len(errs) != len(jobs) {
		t.Fatalf("errs = %d", len(errs))
	}
	if errs[0] != nil || errs[3] != nil {
		t.Fatalf("valid jobs failed: %v, %v", errs[0], errs[3])
	}
	if errs[1] == nil || errs[2] == nil {
		t.Fatal("invalid jobs passed")
	}
	// The package helper takes the BatchVerifier path for Cached and the
	// sequential path for plain schemes — both must agree.
	plain := VerifyBatch(ECDSA{}, jobs)
	for i := range jobs {
		if (plain[i] == nil) != (errs[i] == nil) {
			t.Fatalf("job %d: batch paths disagree", i)
		}
	}
}

// TestCachedConcurrent hammers one Cached scheme from many goroutines with
// a mix of hits, misses, failures and invalidations — meaningful under
// -race.
func TestCachedConcurrent(t *testing.T) {
	cs := newCountingScheme(ECDSA{})
	c := NewCached(cs, CacheOptions{KeyCapacity: 8, ResultCapacity: 32, Workers: 4})
	const nKeys = 4
	kps := make([]KeyPair, nKeys)
	msgs := make([][]byte, nKeys)
	sigs := make([][]byte, nKeys)
	for i := range kps {
		kps[i], msgs[i], sigs[i] = signedTriple(t, ECDSA{})
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				k := (g + i) % nKeys
				switch i % 5 {
				case 0, 1, 2:
					if err := c.Verify(kps[k].Public, msgs[k], sigs[k]); err != nil {
						t.Errorf("verify: %v", err)
						return
					}
				case 3:
					bad := append([]byte(nil), sigs[k]...)
					bad[0] ^= 0xFF
					if err := c.Verify(kps[k].Public, msgs[k], bad); err == nil {
						t.Error("tampered signature verified")
						return
					}
				default:
					c.InvalidateKey(kps[k].Public)
				}
			}
		}(g)
	}
	wg.Wait()
	// Post-invalidation correctness: everything still verifies.
	jobs := make([]VerifyJob, nKeys)
	for i := range jobs {
		jobs[i] = VerifyJob{Pub: kps[i].Public, Msg: msgs[i], Sig: sigs[i]}
	}
	for i, err := range c.VerifyBatch(jobs) {
		if err != nil {
			t.Fatalf("job %d after hammer: %v", i, err)
		}
	}
}

// TestCachedSuiteRecords: wrapping keeps the recorder and the per-verify
// accounting.
func TestCachedSuiteRecords(t *testing.T) {
	var rec Counter
	s, c := NewCachedSuite(Suite{Scheme: ECDSA{}, Rec: &rec}, CacheOptions{})
	if c == nil {
		t.Fatal("no cache handle")
	}
	kp, msg, sigBytes := signedTriple(t, ECDSA{})
	for i := 0; i < 3; i++ {
		if err := s.Verify(kp.Public, msg, sigBytes); err != nil {
			t.Fatal(err)
		}
	}
	if got := rec.Snapshot().Verifies; got != 3 {
		t.Fatalf("recorded verifies = %d, want 3 — caching must not change accounting", got)
	}
}

// BenchmarkVerifyCachedVsCold measures the verification fast path against
// plain ECDSA on the repeat-verify pattern WhoPay's hot paths produce.
//
//	cold:        full SEC1 decode + on-curve check + ECDSA verify per call
//	warm-key:    decoded key cached, signature check still runs (new sigs)
//	warm-result: full memo hit (same coin cert / binding re-verified)
func BenchmarkVerifyCachedVsCold(b *testing.B) {
	kp, msg, sigBytes := signedTriple(b, ECDSA{})

	b.Run("cold", func(b *testing.B) {
		s := ECDSA{}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := s.Verify(kp.Public, msg, sigBytes); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-key", func(b *testing.B) {
		c := NewCached(ECDSA{}, CacheOptions{})
		const distinct = 64
		msgs := make([][]byte, distinct)
		sigs := make([][]byte, distinct)
		for i := range msgs {
			msgs[i] = []byte(fmt.Sprintf("distinct message %d", i))
			var err error
			sigs[i], err = ECDSA{}.Sign(kp.Private, msgs[i])
			if err != nil {
				b.Fatal(err)
			}
		}
		// Results stay cold (each iteration re-keys by message), keys warm.
		c.results = nil
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.verifyMiss(kp.Public, msgs[i%distinct], sigs[i%distinct]); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("warm-result", func(b *testing.B) {
		c := NewCached(ECDSA{}, CacheOptions{})
		if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := c.Verify(kp.Public, msg, sigBytes); err != nil {
				b.Fatal(err)
			}
		}
	})
}
