package sig

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func schemes() map[string]Scheme {
	return map[string]Scheme{
		"ecdsa":   ECDSA{},
		"ed25519": Ed25519{},
		"null":    NewNull(7),
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	for name, s := range schemes() {
		t.Run(name, func(t *testing.T) {
			kp, err := s.GenerateKey()
			if err != nil {
				t.Fatalf("GenerateKey: %v", err)
			}
			msg := []byte("pay to the bearer one coin")
			sigBytes, err := s.Sign(kp.Private, msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := s.Verify(kp.Public, msg, sigBytes); err != nil {
				t.Fatalf("Verify: %v", err)
			}
		})
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	for name, s := range schemes() {
		t.Run(name, func(t *testing.T) {
			kp, err := s.GenerateKey()
			if err != nil {
				t.Fatalf("GenerateKey: %v", err)
			}
			msg := []byte("original")
			sigBytes, err := s.Sign(kp.Private, msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := s.Verify(kp.Public, []byte("tampered"), sigBytes); err == nil {
				t.Fatal("Verify accepted a tampered message")
			}
		})
	}
}

func TestVerifyRejectsWrongKey(t *testing.T) {
	for name, s := range schemes() {
		t.Run(name, func(t *testing.T) {
			kp1, err := s.GenerateKey()
			if err != nil {
				t.Fatalf("GenerateKey: %v", err)
			}
			kp2, err := s.GenerateKey()
			if err != nil {
				t.Fatalf("GenerateKey: %v", err)
			}
			msg := []byte("msg")
			sigBytes, err := s.Sign(kp1.Private, msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := s.Verify(kp2.Public, msg, sigBytes); err == nil {
				t.Fatal("Verify accepted a signature under the wrong key")
			}
		})
	}
}

func TestVerifyRejectsTruncatedSignature(t *testing.T) {
	for name, s := range schemes() {
		t.Run(name, func(t *testing.T) {
			kp, err := s.GenerateKey()
			if err != nil {
				t.Fatalf("GenerateKey: %v", err)
			}
			msg := []byte("msg")
			sigBytes, err := s.Sign(kp.Private, msg)
			if err != nil {
				t.Fatalf("Sign: %v", err)
			}
			if err := s.Verify(kp.Public, msg, sigBytes[:len(sigBytes)/2]); err == nil {
				t.Fatal("Verify accepted a truncated signature")
			}
		})
	}
}

func TestMalformedKeysRejected(t *testing.T) {
	for name, s := range schemes() {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Sign(PrivateKey{1, 2, 3}, []byte("m")); err == nil {
				t.Error("Sign accepted a malformed private key")
			}
			if err := s.Verify(PublicKey{1, 2, 3}, []byte("m"), []byte("sig")); err == nil {
				t.Error("Verify accepted a malformed public key")
			}
		})
	}
}

func TestECDSARejectsOffCurvePoint(t *testing.T) {
	pub := make(PublicKey, ecdsaPubLen)
	pub[0] = 4
	pub[10] = 0xff // almost certainly not on P-256
	err := (ECDSA{}).Verify(pub, []byte("m"), []byte("sig"))
	if !errors.Is(err, ErrBadKey) {
		t.Fatalf("Verify(off-curve) = %v, want ErrBadKey", err)
	}
}

func TestECDSARejectsZeroScalar(t *testing.T) {
	priv := make(PrivateKey, ecdsaPrivLen)
	_, err := (ECDSA{}).Sign(priv, []byte("m"))
	if !errors.Is(err, ErrBadKey) {
		t.Fatalf("Sign(zero scalar) = %v, want ErrBadKey", err)
	}
}

func TestKeysAreUnique(t *testing.T) {
	for name, s := range schemes() {
		t.Run(name, func(t *testing.T) {
			seen := make(map[string]bool)
			for i := 0; i < 64; i++ {
				kp, err := s.GenerateKey()
				if err != nil {
					t.Fatalf("GenerateKey: %v", err)
				}
				if seen[string(kp.Public)] {
					t.Fatalf("duplicate public key after %d generations", i)
				}
				seen[string(kp.Public)] = true
			}
		})
	}
}

func TestNullKeysUniqueAcrossInstances(t *testing.T) {
	a, b := NewNull(1), NewNull(2)
	ka, err := a.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	kb, err := b.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(ka.Public, kb.Public) {
		t.Fatal("null keys collided across instances")
	}
}

func TestNullKeysUniqueConcurrently(t *testing.T) {
	s := NewNull(3)
	const workers, perWorker = 8, 200
	keys := make(chan string, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				kp, err := s.GenerateKey()
				if err != nil {
					t.Error(err)
					return
				}
				keys <- string(kp.Public)
			}
		}()
	}
	wg.Wait()
	close(keys)
	seen := make(map[string]bool, workers*perWorker)
	for k := range keys {
		if seen[k] {
			t.Fatal("concurrent null key collision")
		}
		seen[k] = true
	}
}

func TestPublicKeyHelpers(t *testing.T) {
	kp, err := Ed25519{}.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if !kp.Public.Equal(kp.Public.Clone()) {
		t.Fatal("clone not equal to original")
	}
	clone := kp.Public.Clone()
	clone[0] ^= 0xff
	if kp.Public.Equal(clone) {
		t.Fatal("mutating clone affected original")
	}
	if kp.Public.String() == "" {
		t.Fatal("empty String()")
	}
	var nilKey PublicKey
	if nilKey.Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestFingerprintDistinguishesKeys(t *testing.T) {
	// Property: distinct byte strings yield distinct fingerprints
	// (collision would require breaking SHA-256).
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return PublicKey(a).Fingerprint() == PublicKey(b).Fingerprint()
		}
		return PublicKey(a).Fingerprint() != PublicKey(b).Fingerprint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNullSignVerifyProperty(t *testing.T) {
	s := NewNull(9)
	kp, err := s.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	f := func(msg []byte) bool {
		sigBytes, err := s.Sign(kp.Private, msg)
		if err != nil {
			return false
		}
		return s.Verify(kp.Public, msg, sigBytes) == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterAttribution(t *testing.T) {
	var c Counter
	suite := NewSuite(NewNull(4), &c)
	kp, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	sigBytes, err := suite.Sign(kp.Private, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.Verify(kp.Public, []byte("m"), sigBytes); err != nil {
		t.Fatal(err)
	}
	if err := suite.Verify(kp.Public, []byte("x"), sigBytes); err == nil {
		t.Fatal("expected failure")
	}
	got := c.Snapshot()
	want := Snapshot{KeyGens: 1, Signs: 1, Verifies: 2}
	if got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

func TestSnapshotAdd(t *testing.T) {
	a := Snapshot{KeyGens: 1, Signs: 2, Verifies: 3, GroupSigns: 4, GroupVerifies: 5}
	b := Snapshot{KeyGens: 10, Signs: 20, Verifies: 30, GroupSigns: 40, GroupVerifies: 50}
	got := a.Add(b)
	want := Snapshot{KeyGens: 11, Signs: 22, Verifies: 33, GroupSigns: 44, GroupVerifies: 55}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

func TestSuiteNilRecorder(t *testing.T) {
	suite := NewSuite(NewNull(5), nil)
	kp, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	sigBytes, err := suite.Sign(kp.Private, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := suite.Verify(kp.Public, []byte("m"), sigBytes); err != nil {
		t.Fatal(err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.RecordSign()
				c.RecordVerify()
				c.RecordGroupSign()
				c.RecordGroupVerify()
				c.RecordKeyGen()
			}
		}()
	}
	wg.Wait()
	got := c.Snapshot()
	want := Snapshot{KeyGens: 1000, Signs: 1000, Verifies: 1000, GroupSigns: 1000, GroupVerifies: 1000}
	if got != want {
		t.Fatalf("snapshot = %+v, want %+v", got, want)
	}
}

// Benchmarks feeding Table 2 (measured operation cost). The paper measured
// DSA-1024 key generation / signing / verification; these measure our ECDSA
// P-256 stand-in.

func BenchmarkECDSAKeyGen(b *testing.B) {
	s := ECDSA{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.GenerateKey(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDSASign(b *testing.B) {
	s := ECDSA{}
	kp, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message for table 2")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(kp.Private, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkECDSAVerify(b *testing.B) {
	s := ECDSA{}
	kp, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message for table 2")
	sigBytes, err := s.Sign(kp.Private, msg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Verify(kp.Public, msg, sigBytes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEd25519Sign(b *testing.B) {
	s := Ed25519{}
	kp, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(kp.Private, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNullSign(b *testing.B) {
	s := NewNull(1)
	kp, err := s.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	msg := []byte("benchmark message")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sign(kp.Private, msg); err != nil {
			b.Fatal(err)
		}
	}
}
