package sig

import (
	"crypto/ed25519"
	"crypto/rand"
	"fmt"
)

// Ed25519 implements Scheme with the stdlib Ed25519 implementation. It is
// faster than ECDSA for signing and offers deterministic signatures; useful
// where the application prefers throughput over DSA-likeness.
type Ed25519 struct{}

var _ Scheme = Ed25519{}

// Name implements Scheme.
func (Ed25519) Name() string { return "ed25519" }

// GenerateKey implements Scheme.
func (Ed25519) GenerateKey() (KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("sig: ed25519 keygen: %w", err)
	}
	return KeyPair{Public: PublicKey(pub), Private: PrivateKey(priv)}, nil
}

// Sign implements Scheme.
func (Ed25519) Sign(priv PrivateKey, msg []byte) ([]byte, error) {
	if len(priv) != ed25519.PrivateKeySize {
		return nil, fmt.Errorf("%w: want %d-byte ed25519 private key", ErrBadKey, ed25519.PrivateKeySize)
	}
	return ed25519.Sign(ed25519.PrivateKey(priv), msg), nil
}

// Verify implements Scheme.
func (Ed25519) Verify(pub PublicKey, msg []byte, sigBytes []byte) error {
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("%w: want %d-byte ed25519 public key", ErrBadKey, ed25519.PublicKeySize)
	}
	if !ed25519.Verify(ed25519.PublicKey(pub), msg, sigBytes) {
		return ErrBadSignature
	}
	return nil
}
