package sig

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"math/big"
)

// ECDSA implements Scheme over the NIST P-256 curve. It is the default
// production scheme and the modern stand-in for the DSA-1024 the paper
// measured in Table 2: the operation mix (key generation, signature
// generation, signature verification) is identical.
//
// Encodings: private keys are the 32-byte big-endian scalar; public keys are
// the 65-byte uncompressed SEC1 point (0x04 || X || Y); signatures are
// ASN.1 DER as produced by crypto/ecdsa.
type ECDSA struct{}

var (
	_ Scheme     = ECDSA{}
	_ KeyDecoder = ECDSA{}
)

const (
	ecdsaPrivLen = 32
	ecdsaPubLen  = 65
)

// Name implements Scheme.
func (ECDSA) Name() string { return "ecdsa-p256" }

// GenerateKey implements Scheme.
func (ECDSA) GenerateKey() (KeyPair, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return KeyPair{}, fmt.Errorf("sig: ecdsa keygen: %w", err)
	}
	priv := make([]byte, ecdsaPrivLen)
	key.D.FillBytes(priv)
	pub := encodeECDSAPub(&key.PublicKey)
	return KeyPair{Public: pub, Private: priv}, nil
}

// Sign implements Scheme.
func (ECDSA) Sign(priv PrivateKey, msg []byte) ([]byte, error) {
	key, err := decodeECDSAPriv(priv)
	if err != nil {
		return nil, err
	}
	digest := sha256.Sum256(msg)
	sigBytes, err := ecdsa.SignASN1(rand.Reader, key, digest[:])
	if err != nil {
		return nil, fmt.Errorf("sig: ecdsa sign: %w", err)
	}
	return sigBytes, nil
}

// Verify implements Scheme.
func (ECDSA) Verify(pub PublicKey, msg []byte, sigBytes []byte) error {
	key, err := decodeECDSAPub(pub)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(key, digest[:], sigBytes) {
		return ErrBadSignature
	}
	return nil
}

// DecodePublic implements KeyDecoder: it performs the SEC1 parse and
// on-curve check once so a cache can amortize them across verifies. The
// returned *ecdsa.PublicKey is read-only after construction and safe to
// share between goroutines.
func (ECDSA) DecodePublic(pub PublicKey) (any, error) {
	return decodeECDSAPub(pub)
}

// VerifyDecoded implements KeyDecoder, checking a signature against an
// already-parsed key from DecodePublic.
func (ECDSA) VerifyDecoded(key any, msg []byte, sigBytes []byte) error {
	pk, ok := key.(*ecdsa.PublicKey)
	if !ok {
		return fmt.Errorf("%w: not a decoded P-256 key", ErrBadKey)
	}
	digest := sha256.Sum256(msg)
	if !ecdsa.VerifyASN1(pk, digest[:], sigBytes) {
		return ErrBadSignature
	}
	return nil
}

func encodeECDSAPub(key *ecdsa.PublicKey) PublicKey {
	out := make([]byte, ecdsaPubLen)
	out[0] = 4
	key.X.FillBytes(out[1:33])
	key.Y.FillBytes(out[33:65])
	return out
}

func decodeECDSAPub(pub PublicKey) (*ecdsa.PublicKey, error) {
	if len(pub) != ecdsaPubLen || pub[0] != 4 {
		return nil, fmt.Errorf("%w: want %d-byte uncompressed point", ErrBadKey, ecdsaPubLen)
	}
	x := new(big.Int).SetBytes(pub[1:33])
	y := new(big.Int).SetBytes(pub[33:65])
	curve := elliptic.P256()
	// Reject points not on the curve so Verify cannot be tricked into
	// undefined behaviour by a crafted key.
	if !curve.IsOnCurve(x, y) {
		return nil, fmt.Errorf("%w: point not on P-256", ErrBadKey)
	}
	return &ecdsa.PublicKey{Curve: curve, X: x, Y: y}, nil
}

func decodeECDSAPriv(priv PrivateKey) (*ecdsa.PrivateKey, error) {
	if len(priv) != ecdsaPrivLen {
		return nil, fmt.Errorf("%w: want %d-byte scalar", ErrBadKey, ecdsaPrivLen)
	}
	curve := elliptic.P256()
	d := new(big.Int).SetBytes(priv)
	if d.Sign() == 0 || d.Cmp(curve.Params().N) >= 0 {
		return nil, fmt.Errorf("%w: scalar out of range", ErrBadKey)
	}
	key := &ecdsa.PrivateKey{D: d}
	key.Curve = curve
	key.X, key.Y = curve.ScalarBaseMult(priv)
	return key, nil
}
