package costmodel

import (
	"strings"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/sig"
)

func TestCPUWeights(t *testing.T) {
	cases := []struct {
		name string
		snap sig.Snapshot
		want int64
	}{
		{"empty", sig.Snapshot{}, 0},
		{"keygen", sig.Snapshot{KeyGens: 3}, 3},
		{"sign", sig.Snapshot{Signs: 2}, 4},
		{"verify", sig.Snapshot{Verifies: 5}, 10},
		{"group sign", sig.Snapshot{GroupSigns: 2}, 8},
		{"group verify", sig.Snapshot{GroupVerifies: 1}, 4},
		{
			// The paper's per-transfer peer mix: 1 keygen + 4 sign
			// + 4 verify + 1 gsign + 1 gverify = 1+8+8+4+4 = 25.
			"paper transfer mix",
			sig.Snapshot{KeyGens: 1, Signs: 4, Verifies: 4, GroupSigns: 1, GroupVerifies: 1},
			25,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := CPU(tc.snap); got != tc.want {
				t.Fatalf("CPU = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestComm(t *testing.T) {
	if got := Comm(bus.MsgStats{Sent: 3, Received: 4}); got != 7 {
		t.Fatalf("Comm = %d", got)
	}
}

func TestMeasureNull(t *testing.T) {
	table, err := Measure(sig.NewNull(1), 50)
	if err != nil {
		t.Fatal(err)
	}
	if table.Scheme != "null" {
		t.Fatalf("scheme = %q", table.Scheme)
	}
	if table.KeyGen.AvgTime < 0 || table.Sign.AvgTime < 0 {
		t.Fatal("negative timings")
	}
	out := table.String()
	for _, want := range []string{"key pair generation", "signature generation", "signature verification"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestMeasureECDSA(t *testing.T) {
	if testing.Short() {
		t.Skip("crypto timing in -short mode")
	}
	table, err := Measure(sig.ECDSA{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if table.Sign.AvgTime <= 0 || table.Verify.AvgTime <= 0 || table.KeyGen.AvgTime <= 0 {
		t.Fatalf("non-positive timing: %+v", table)
	}
	// Sanity: ECDSA verify is slower than keygen-relative zero; the
	// exact ratios are hardware-dependent, just require positivity.
	if table.RelSign <= 0 || table.RelVrfy <= 0 {
		t.Fatalf("relative costs: %+v", table)
	}
}

func TestMeasureIterClamp(t *testing.T) {
	if _, err := Measure(sig.NewNull(2), 0); err != nil {
		t.Fatal(err)
	}
}

func TestRelativeTable(t *testing.T) {
	out := RelativeTable()
	for _, want := range []string{"group signature generation     4", "key pair generation            1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
