// Package costmodel converts counted crypto micro-operations and bus
// messages into the CPU and communication loads the paper's Figures 6-11
// plot.
//
// CPU cost follows Table 3 exactly: with key-pair generation as the base
// unit, regular signature generation and verification cost 2 units and
// group signature generation and verification cost 4 (the paper's "wild
// guess" of 2x regular, which our credential-based construction happens to
// match). Communication cost is proportional to the number of messages
// sent and received (Section 6.2: "we will let the communication cost of
// each operation be proportional to the number of messages sent/received
// rather than the number of bits").
//
// The package also measures real wall-clock costs of the crypto
// micro-operations (Table 2's analog for our ECDSA P-256 stand-in).
package costmodel

import (
	"fmt"
	"time"

	"whopay/internal/bus"
	"whopay/internal/sig"
)

// Table 3 relative CPU costs, in key-generation units.
const (
	KeyGenCost      = 1
	SignCost        = 2
	VerifyCost      = 2
	GroupSignCost   = 4
	GroupVerifyCost = 4
)

// CPU converts a micro-operation snapshot into Table 3 CPU units.
func CPU(s sig.Snapshot) int64 {
	return s.KeyGens*KeyGenCost +
		s.Signs*SignCost +
		s.Verifies*VerifyCost +
		s.GroupSigns*GroupSignCost +
		s.GroupVerifies*GroupVerifyCost
}

// Comm converts bus statistics into the paper's communication load metric.
func Comm(s bus.MsgStats) int64 { return s.Total() }

// OpCost is one row of the measured-cost table (the paper's Table 2).
type OpCost struct {
	Name      string
	AvgTime   time.Duration
	PerSecond float64
}

// MeasuredTable is the Table 2 analog: measured costs of the three
// micro-operations under a scheme, plus the derived relative units.
type MeasuredTable struct {
	Scheme  string
	KeyGen  OpCost
	Sign    OpCost
	Verify  OpCost
	RelSign float64 // sign time / keygen time
	RelVrfy float64
}

// Measure times iters iterations of each micro-operation under scheme.
// This regenerates Table 2 on the host machine (the paper measured DSA-1024
// under Bouncy Castle on a 3.06 GHz Xeon: 7.8 / 13.9 / 12.3 ms).
func Measure(scheme sig.Scheme, iters int) (MeasuredTable, error) {
	if iters < 1 {
		iters = 1
	}
	out := MeasuredTable{Scheme: scheme.Name()}
	msg := []byte("whopay cost-model measurement message")

	kp, err := scheme.GenerateKey()
	if err != nil {
		return out, fmt.Errorf("costmodel: keygen: %w", err)
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := scheme.GenerateKey(); err != nil {
			return out, fmt.Errorf("costmodel: keygen: %w", err)
		}
	}
	out.KeyGen = opCost("key pair generation", time.Since(start), iters)

	sigBytes, err := scheme.Sign(kp.Private, msg)
	if err != nil {
		return out, fmt.Errorf("costmodel: sign: %w", err)
	}
	start = time.Now()
	for i := 0; i < iters; i++ {
		if _, err := scheme.Sign(kp.Private, msg); err != nil {
			return out, fmt.Errorf("costmodel: sign: %w", err)
		}
	}
	out.Sign = opCost("signature generation", time.Since(start), iters)

	start = time.Now()
	for i := 0; i < iters; i++ {
		if err := scheme.Verify(kp.Public, msg, sigBytes); err != nil {
			return out, fmt.Errorf("costmodel: verify: %w", err)
		}
	}
	out.Verify = opCost("signature verification", time.Since(start), iters)

	if out.KeyGen.AvgTime > 0 {
		out.RelSign = float64(out.Sign.AvgTime) / float64(out.KeyGen.AvgTime)
		out.RelVrfy = float64(out.Verify.AvgTime) / float64(out.KeyGen.AvgTime)
	}
	return out, nil
}

func opCost(name string, total time.Duration, iters int) OpCost {
	avg := total / time.Duration(iters)
	persec := 0.0
	if avg > 0 {
		persec = float64(time.Second) / float64(avg)
	}
	return OpCost{Name: name, AvgTime: avg, PerSecond: persec}
}

// String renders the table in the paper's format.
func (t MeasuredTable) String() string {
	return fmt.Sprintf(
		"Measured Operation Cost (%s)\n"+
			"  %-28s %12v (%8.0f/s)\n"+
			"  %-28s %12v (%8.0f/s)\n"+
			"  %-28s %12v (%8.0f/s)\n"+
			"  relative: keygen=1.00 sign=%.2f verify=%.2f (Table 3 assumes 1/2/2)\n",
		t.Scheme,
		t.KeyGen.Name, t.KeyGen.AvgTime, t.KeyGen.PerSecond,
		t.Sign.Name, t.Sign.AvgTime, t.Sign.PerSecond,
		t.Verify.Name, t.Verify.AvgTime, t.Verify.PerSecond,
		t.RelSign, t.RelVrfy)
}

// RelativeTable renders the paper's Table 3 (assumed relative costs).
func RelativeTable() string {
	return "Relative Operation Cost (Table 3)\n" +
		"  key pair generation            1\n" +
		"  regular signature generation   2\n" +
		"  regular signature verification 2\n" +
		"  group signature generation     4\n" +
		"  group signature verification   4\n"
}
