package indirect

import (
	"whopay/internal/bus"
	"whopay/internal/wire"
)

// Wire type tags for indirection messages (stable wire contract).
const (
	tagRegisterMsg = 60
	tagForwardMsg  = 61
	tagAck         = 62
)

// RegisterWireCodecs registers the indirection-layer messages with the
// wire codec registry. ForwardMsg's inner payload is an any-valued field:
// registered inner types ride their own codec, everything else falls back
// to an embedded gob stream.
func RegisterWireCodecs() {
	wire.Register(tagRegisterMsg, "indirect.RegisterMsg", RegisterMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(RegisterMsg)
			dst = wire.AppendBytes(dst, m.Handle)
			dst = wire.AppendString(dst, string(m.Target))
			dst = wire.AppendU64(dst, m.Version)
			dst = wire.AppendBytes(dst, m.Sig)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m RegisterMsg
			var err error
			if m.Handle, err = d.Bytes(); err != nil {
				return nil, err
			}
			var s string
			if s, err = d.String(); err != nil {
				return nil, err
			}
			m.Target = bus.Address(s)
			if m.Version, err = d.U64(); err != nil {
				return nil, err
			}
			if m.Sig, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagForwardMsg, "indirect.ForwardMsg", ForwardMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(ForwardMsg)
			dst = wire.AppendBytes(dst, m.Handle)
			return wire.AppendAny(dst, m.Inner)
		},
		func(d *wire.Decoder) (any, error) {
			var m ForwardMsg
			var err error
			if m.Handle, err = d.Bytes(); err != nil {
				return nil, err
			}
			if m.Inner, err = d.Any(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagAck, "indirect.Ack", Ack{},
		func(dst []byte, v any) ([]byte, error) { return dst, nil },
		func(d *wire.Decoder) (any, error) { return Ack{}, nil })
}
