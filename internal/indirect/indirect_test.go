package indirect

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/sig"
)

type fixture struct {
	net     *bus.Memory
	suite   sig.Suite
	servers []*Server
	addrs   []bus.Address
}

func newFixture(t *testing.T, n int) *fixture {
	t.Helper()
	f := &fixture{net: bus.NewMemory(), suite: sig.Suite{Scheme: sig.NewNull(500)}}
	for i := 0; i < n; i++ {
		addr := bus.Address(fmt.Sprintf("i3:%d", i))
		srv, err := NewServer(f.net, addr, f.suite.Scheme)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		f.servers = append(f.servers, srv)
		f.addrs = append(f.addrs, addr)
	}
	return f
}

func (f *fixture) listen(t *testing.T, addr bus.Address, h bus.Handler) (*Client, bus.Endpoint) {
	t.Helper()
	ep, err := f.net.Listen(addr, h)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ep, f.addrs)
	if err != nil {
		t.Fatal(err)
	}
	return c, ep
}

func echo(from bus.Address, msg any) (any, error) { return msg, nil }

func TestRegisterAndForward(t *testing.T) {
	f := newFixture(t, 3)
	ownerClient, _ := f.listen(t, "owner", func(from bus.Address, msg any) (any, error) {
		return "owner says: " + msg.(string), nil
	})
	handle, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerClient.Register(f.suite, handle, "owner", 1); err != nil {
		t.Fatal(err)
	}
	payerClient, _ := f.listen(t, "payer", echo)
	resp, err := payerClient.Send(handle.Public, "transfer please")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "owner says: transfer please" {
		t.Fatalf("resp = %v", resp)
	}
}

func TestSenderSeesServerNotTarget(t *testing.T) {
	f := newFixture(t, 2)
	var seenFrom bus.Address
	ownerClient, _ := f.listen(t, "owner", func(from bus.Address, msg any) (any, error) {
		seenFrom = from
		return "ok", nil
	})
	handle, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerClient.Register(f.suite, handle, "owner", 1); err != nil {
		t.Fatal(err)
	}
	payerClient, _ := f.listen(t, "payer", echo)
	if _, err := payerClient.Send(handle.Public, "x"); err != nil {
		t.Fatal(err)
	}
	// The owner sees the server as the caller — it cannot identify the
	// payer either.
	if !strings.HasPrefix(string(seenFrom), "i3:") {
		t.Fatalf("owner saw caller %q, want an i3 server", seenFrom)
	}
}

func TestForwardUnregisteredHandle(t *testing.T) {
	f := newFixture(t, 2)
	payerClient, _ := f.listen(t, "payer", echo)
	handle, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	_, err = payerClient.Send(handle.Public, "x")
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "no trigger") {
		t.Fatalf("got %v, want no-trigger remote error", err)
	}
}

func TestRegisterRequiresHandleKey(t *testing.T) {
	f := newFixture(t, 2)
	hijacker, _ := f.listen(t, "hijacker", echo)
	handle, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	wrongKey, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	forged := sig.KeyPair{Public: handle.Public, Private: wrongKey.Private}
	err = hijacker.Register(f.suite, forged, "hijacker", 1)
	var remote *bus.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("got %v, want remote auth error", err)
	}
}

func TestTriggerMoveNeedsNewerVersion(t *testing.T) {
	f := newFixture(t, 1)
	ownerClient, _ := f.listen(t, "owner", func(from bus.Address, msg any) (any, error) {
		return "at-owner", nil
	})
	otherClient, _ := f.listen(t, "other", func(from bus.Address, msg any) (any, error) {
		return "at-other", nil
	})
	handle, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerClient.Register(f.suite, handle, "owner", 2); err != nil {
		t.Fatal(err)
	}
	// Replaying an older registration must fail.
	if err := otherClient.Register(f.suite, handle, "other", 1); err == nil {
		t.Fatal("older registration version accepted")
	}
	// A newer one moves the trigger (owner rebinding after rejoin).
	if err := ownerClient.Register(f.suite, handle, "other", 3); err != nil {
		t.Fatal(err)
	}
	payerClient, _ := f.listen(t, "payer", echo)
	resp, err := payerClient.Send(handle.Public, "x")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "at-other" {
		t.Fatalf("resp = %v, want at-other", resp)
	}
}

func TestTargetErrorsPropagate(t *testing.T) {
	f := newFixture(t, 1)
	ownerClient, _ := f.listen(t, "owner", func(from bus.Address, msg any) (any, error) {
		return nil, errors.New("not the coin owner")
	})
	handle, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerClient.Register(f.suite, handle, "owner", 1); err != nil {
		t.Fatal(err)
	}
	payerClient, _ := f.listen(t, "payer", echo)
	_, err = payerClient.Send(handle.Public, "x")
	var remote *bus.RemoteError
	if !errors.As(err, &remote) || !strings.Contains(remote.Msg, "not the coin owner") {
		t.Fatalf("got %v, want propagated owner error", err)
	}
}

func TestOfflineTargetUnreachable(t *testing.T) {
	f := newFixture(t, 1)
	ownerClient, _ := f.listen(t, "owner", echo)
	handle, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if err := ownerClient.Register(f.suite, handle, "owner", 1); err != nil {
		t.Fatal(err)
	}
	f.net.SetOnline("owner", false)
	payerClient, _ := f.listen(t, "payer", echo)
	if _, err := payerClient.Send(handle.Public, "x"); err == nil {
		t.Fatal("send to offline target succeeded")
	}
}

func TestHandlesShardAcrossServers(t *testing.T) {
	f := newFixture(t, 4)
	client, _ := f.listen(t, "probe", echo)
	seen := make(map[bus.Address]bool)
	for i := 0; i < 64; i++ {
		kp, err := f.suite.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		seen[client.serverFor(kp.Public)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("64 handles all mapped to %d server(s)", len(seen))
	}
}

func TestNoServers(t *testing.T) {
	f := newFixture(t, 1)
	ep, err := f.net.Listen("x", echo)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(ep, nil); !errors.Is(err, ErrNoServers) {
		t.Fatalf("got %v, want ErrNoServers", err)
	}
}
