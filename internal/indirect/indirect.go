// Package indirect implements an i3-style anonymous indirection layer
// (paper Section 5.2, third approach). Owner-anonymous coins embed a
// *handle* instead of an owner identity; the owner registers a trigger on
// the handle at an indirection server, and anyone can send protocol
// messages "to the handle" without learning who serves them. With our
// request/response bus the server simply forwards the inner request to the
// registered target and relays the response back.
//
// Handles are public keys: registering (or moving) a trigger requires a
// signature by the handle's private key, so only the owner can hijack its
// own handle. Multiple servers shard handles by hash, like i3's
// Chord-based trigger placement.
package indirect

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"whopay/internal/bus"
	"whopay/internal/sig"
)

// Errors returned by servers and clients.
var (
	// ErrNoTrigger is returned when forwarding to an unregistered handle.
	ErrNoTrigger = errors.New("indirect: no trigger registered for handle")
	// ErrBadAuth is returned when a trigger registration has a bad
	// signature.
	ErrBadAuth = errors.New("indirect: invalid trigger authorization")
	// ErrNoServers is returned by a client with an empty server list.
	ErrNoServers = errors.New("indirect: no servers")
)

// triggerMessage is the canonical byte string signed to (re)register a
// trigger. The version counter prevents replaying an old registration to
// re-point a moved trigger.
func triggerMessage(handle []byte, target bus.Address, version uint64) []byte {
	out := make([]byte, 0, 40+len(handle)+len(target))
	out = append(out, "whopay/indirect/trigger/1"...)
	out = binary.AppendUvarint(out, uint64(len(handle)))
	out = append(out, handle...)
	out = binary.AppendUvarint(out, uint64(len(target)))
	out = append(out, target...)
	out = binary.BigEndian.AppendUint64(out, version)
	return out
}

// Wire messages, exported for gob registration.
type (
	// RegisterMsg installs (or moves) the trigger for Handle.
	RegisterMsg struct {
		Handle  []byte
		Target  bus.Address
		Version uint64
		Sig     []byte
	}
	// ForwardMsg relays Inner to the trigger target of Handle.
	ForwardMsg struct {
		Handle []byte
		Inner  any
	}
	// Ack is an empty success response.
	Ack struct{}
)

type trigger struct {
	target  bus.Address
	version uint64
}

// Server is one indirection server.
type Server struct {
	addr   bus.Address
	ep     bus.Endpoint
	scheme sig.Scheme

	mu       sync.Mutex
	triggers map[string]trigger
}

// NewServer starts an indirection server at addr on net, verifying trigger
// registrations with scheme.
func NewServer(net bus.Network, addr bus.Address, scheme sig.Scheme) (*Server, error) {
	s := &Server{addr: addr, scheme: scheme, triggers: make(map[string]trigger)}
	ep, err := net.Listen(addr, s.handle)
	if err != nil {
		return nil, fmt.Errorf("indirect: starting server %s: %w", addr, err)
	}
	s.ep = ep
	return s, nil
}

// Addr returns the server's address.
func (s *Server) Addr() bus.Address { return s.addr }

// Close shuts the server down.
func (s *Server) Close() error { return s.ep.Close() }

func (s *Server) handle(from bus.Address, msg any) (any, error) {
	switch m := msg.(type) {
	case RegisterMsg:
		// Only the holder of the handle's private key may install or
		// move its trigger.
		if err := s.scheme.Verify(m.Handle, triggerMessage(m.Handle, m.Target, m.Version), m.Sig); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadAuth, err)
		}
		s.mu.Lock()
		cur, exists := s.triggers[string(m.Handle)]
		if exists && m.Version <= cur.version {
			s.mu.Unlock()
			return nil, fmt.Errorf("%w: registration version %d not newer than %d", ErrBadAuth, m.Version, cur.version)
		}
		s.triggers[string(m.Handle)] = trigger{target: m.Target, version: m.Version}
		s.mu.Unlock()
		return Ack{}, nil
	case ForwardMsg:
		s.mu.Lock()
		tr, ok := s.triggers[string(m.Handle)]
		s.mu.Unlock()
		if !ok {
			return nil, ErrNoTrigger
		}
		// Relay: the sender never learns tr.target; the target sees
		// the server as the caller.
		return s.ep.Call(tr.target, m.Inner)
	default:
		return nil, fmt.Errorf("indirect: unknown message %T", msg)
	}
}

// Client addresses handles across a sharded server set.
type Client struct {
	ep      bus.Endpoint
	servers []bus.Address
}

// NewClient returns a client that reaches handles through servers.
func NewClient(ep bus.Endpoint, servers []bus.Address) (*Client, error) {
	if len(servers) == 0 {
		return nil, ErrNoServers
	}
	return &Client{ep: ep, servers: append([]bus.Address(nil), servers...)}, nil
}

// serverFor shards handles over servers by hash.
func (c *Client) serverFor(handle []byte) bus.Address {
	h := sha256.Sum256(handle)
	return c.servers[int(binary.BigEndian.Uint32(h[:4]))%len(c.servers)]
}

// Register installs a trigger pointing handle at target. The handle key
// pair authorizes the registration; version must increase on moves.
func (c *Client) Register(suite sig.Suite, handleKeys sig.KeyPair, target bus.Address, version uint64) error {
	sigBytes, err := suite.Sign(handleKeys.Private, triggerMessage(handleKeys.Public, target, version))
	if err != nil {
		return fmt.Errorf("indirect: signing registration: %w", err)
	}
	_, err = c.ep.Call(c.serverFor(handleKeys.Public), RegisterMsg{
		Handle:  handleKeys.Public,
		Target:  target,
		Version: version,
		Sig:     sigBytes,
	})
	return err
}

// Send relays inner to whatever target is registered for handle and
// returns the target's response.
func (c *Client) Send(handle []byte, inner any) (any, error) {
	return c.ep.Call(c.serverFor(handle), ForwardMsg{Handle: handle, Inner: inner})
}
