// Package layered implements the offline transfer alternative the paper's
// related-work section proposes as a WhoPay extension (Section 7): "peers
// can transfer coins by using layers: each time a coin is transferred, the
// current holder of the coin simply adds another layer of signature to the
// coin, which serves as a proof of relinquishment. Group signatures can be
// used to provide fairness without compromising anonymity. ... layered
// coins can be a lightweight alternative to transfer-via-broker when coin
// owners are offline. To alleviate the size and security problems ... a
// maximum number of layers can be imposed."
//
// A layered coin starts from a WhoPay coin plus its latest owner- or
// broker-signed binding. Each offline hop appends a layer: the current
// holder signs {coin, layerIndex, nextHolderKey} with its holder key and a
// group signature. Verification walks the chain from the binding's holder
// through every layer. When the owner (or broker) becomes reachable, the
// final holder collapses the layers back into a regular binding by
// presenting the chain — or deposits directly.
//
// The documented trade-offs hold by construction: coins grow per hop
// (linear in layers), and double spending a layered coin is only detected
// at collapse/deposit time (there is no public-binding update while
// offline), which is why MaxLayers exists.
package layered

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"whopay/internal/coin"
	"whopay/internal/groupsig"
	"whopay/internal/sig"
)

// DefaultMaxLayers bounds chain growth and offline double-spend exposure.
const DefaultMaxLayers = 8

// Errors returned by this package.
var (
	// ErrTooManyLayers rejects hops beyond the configured maximum.
	ErrTooManyLayers = errors.New("layered: maximum layer count reached")
	// ErrBadChain rejects coins whose layer chain does not verify.
	ErrBadChain = errors.New("layered: invalid layer chain")
	// ErrNotHolder rejects hops not signed by the current end-of-chain
	// holder.
	ErrNotHolder = errors.New("layered: signer is not the current holder")
)

// Layer is one offline hop: the relinquishing holder's signature over the
// next holder key, plus a group signature for fairness.
type Layer struct {
	NextHolder sig.PublicKey
	HolderSig  []byte
	GroupSig   groupsig.Signature
}

func layerMessage(coinPub sig.PublicKey, index int, nextHolder sig.PublicKey) []byte {
	out := []byte("whopay/layered/1")
	out = append(out, coinPub...)
	out = binary.BigEndian.AppendUint32(out, uint32(index))
	out = append(out, nextHolder...)
	return out
}

// Coin is a layered coin in flight: the base WhoPay coin, its last
// authoritative binding, and the offline hop chain.
type Coin struct {
	Base    coin.Coin
	Binding coin.Binding
	Layers  []Layer
}

// CurrentHolder returns the public key that currently controls the coin:
// the binding's holder when no layers exist, else the last layer's target.
func (lc *Coin) CurrentHolder() sig.PublicKey {
	if len(lc.Layers) == 0 {
		return sig.PublicKey(lc.Binding.Holder)
	}
	return lc.Layers[len(lc.Layers)-1].NextHolder
}

// Size approximates the coin's wire size in bytes — the growth the paper
// warns about.
func (lc *Coin) Size() int {
	n := len(lc.Base.Message()) + len(lc.Base.Sig) + len(lc.Binding.Marshal())
	for _, l := range lc.Layers {
		n += len(l.NextHolder) + len(l.HolderSig) + len(l.GroupSig.Sig) + len(l.GroupSig.Cred.Pub) + len(l.GroupSig.Cred.Cert) + 8
	}
	return n
}

// Clone deep-copies the layered coin.
func (lc *Coin) Clone() *Coin {
	out := &Coin{Base: *lc.Base.Clone(), Binding: *lc.Binding.Clone()}
	out.Layers = append(out.Layers, lc.Layers...)
	return out
}

// Verify checks the whole construct: the broker signature on the base
// coin, the binding, and every layer's holder and group signature.
//
// Every signer in the chain is known upfront (the binding names the first
// holder, each layer names the next), so all checks are independent and run
// as one scheme-level batch — under a BatchVerifier scheme they fan out in
// parallel. Recorded micro-ops and the first-failure-in-chain-order error
// are identical to the sequential walk this replaces.
func (lc *Coin) Verify(suite sig.Suite, brokerPub, groupPub sig.PublicKey, maxLayers int) error {
	if maxLayers <= 0 {
		maxLayers = DefaultMaxLayers
	}
	if len(lc.Layers) > maxLayers {
		return fmt.Errorf("%w: %d layers", ErrTooManyLayers, len(lc.Layers))
	}
	// Structural checks stay sequential and first — they are free and gate
	// the same errors the per-piece verifiers would have raised.
	if len(lc.Base.Pub) == 0 {
		return fmt.Errorf("%w: %v", ErrBadChain, fmt.Errorf("%w: empty coin key", coin.ErrBadCoin))
	}
	if lc.Base.Value <= 0 {
		return fmt.Errorf("%w: %v", ErrBadChain, fmt.Errorf("%w: non-positive value", coin.ErrBadCoin))
	}
	if !sig.PublicKey(lc.Binding.CoinPub).Equal(lc.Base.Pub) {
		return fmt.Errorf("%w: %v", ErrBadChain, coin.ErrWrongCoin)
	}
	if suite.Rec != nil {
		// Account for what the sequential walk performed: base cert,
		// binding, and one holder verify plus one group verify per layer.
		for i := 0; i < 2+len(lc.Layers); i++ {
			suite.Rec.RecordVerify()
		}
		for range lc.Layers {
			suite.Rec.RecordGroupVerify()
		}
	}
	bindingSigner := sig.PublicKey(lc.Binding.CoinPub)
	if lc.Binding.ByBroker {
		bindingSigner = brokerPub
	}
	jobs := make([]sig.VerifyJob, 0, 2+3*len(lc.Layers))
	jobs = append(jobs,
		sig.VerifyJob{Pub: brokerPub, Msg: lc.Base.Message(), Sig: lc.Base.Sig},
		sig.VerifyJob{Pub: bindingSigner, Msg: lc.Binding.Message(), Sig: lc.Binding.Sig},
	)
	holder := sig.PublicKey(lc.Binding.Holder)
	for i, layer := range lc.Layers {
		msg := layerMessage(lc.Base.Pub, i, layer.NextHolder)
		jobs = append(jobs,
			sig.VerifyJob{Pub: holder, Msg: msg, Sig: layer.HolderSig},
			sig.VerifyJob{Pub: groupPub, Msg: groupsig.CredentialMessage(layer.GroupSig.Cred.Serial, layer.GroupSig.Cred.Pub), Sig: layer.GroupSig.Cred.Cert},
			sig.VerifyJob{Pub: layer.GroupSig.Cred.Pub, Msg: msg, Sig: layer.GroupSig.Sig},
		)
		holder = layer.NextHolder
	}
	errs := sig.VerifyBatch(suite.Scheme, jobs)
	if errs[0] != nil {
		return fmt.Errorf("%w: %v", ErrBadChain, fmt.Errorf("%w: %v", coin.ErrBadCoin, errs[0]))
	}
	if errs[1] != nil {
		return fmt.Errorf("%w: %v", ErrBadChain, fmt.Errorf("%w: %v", coin.ErrBadBinding, errs[1]))
	}
	for i := range lc.Layers {
		if err := errs[2+3*i]; err != nil {
			return fmt.Errorf("%w: layer %d holder signature: %v", ErrBadChain, i, err)
		}
		if err := errs[3+3*i]; err != nil {
			return fmt.Errorf("%w: layer %d group signature: %v", ErrBadChain, i,
				fmt.Errorf("%w: %v", groupsig.ErrNotMember, err))
		}
		if err := errs[4+3*i]; err != nil {
			return fmt.Errorf("%w: layer %d group signature: %v", ErrBadChain, i,
				fmt.Errorf("%w: %v", groupsig.ErrBadSignature, err))
		}
	}
	return nil
}

// Hop appends a layer transferring the coin to nextHolder. holderPriv must
// be the private half of the current end-of-chain holder key; member signs
// the fairness group signature. The input coin is not mutated.
func Hop(suite sig.Suite, lc *Coin, holderPriv sig.PrivateKey, member *groupsig.MemberKey, nextHolder sig.PublicKey, maxLayers int) (*Coin, error) {
	if maxLayers <= 0 {
		maxLayers = DefaultMaxLayers
	}
	if len(lc.Layers) >= maxLayers {
		return nil, fmt.Errorf("%w: %d", ErrTooManyLayers, len(lc.Layers))
	}
	msg := layerMessage(lc.Base.Pub, len(lc.Layers), nextHolder)
	holderSig, err := suite.Sign(holderPriv, msg)
	if err != nil {
		return nil, fmt.Errorf("layered: signing hop: %w", err)
	}
	// Signature must actually belong to the chain head — catch wrong-key
	// bugs at hop time, not at the payee.
	if err := suite.Scheme.Verify(lc.CurrentHolder(), msg, holderSig); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotHolder, err)
	}
	gs, err := member.Sign(suite, msg)
	if err != nil {
		return nil, fmt.Errorf("layered: group-signing hop: %w", err)
	}
	out := lc.Clone()
	out.Layers = append(out.Layers, Layer{NextHolder: nextHolder.Clone(), HolderSig: holderSig, GroupSig: gs})
	return out, nil
}

// CollapseProofs converts the layer chain into the relinquishment-proof
// form the owner/broker dispute machinery understands, so a layered coin
// can be folded back into a regular binding: proof i authorizes the move
// from binding.Seq+i to binding.Seq+i+1.
func (lc *Coin) CollapseProofs() []CollapseStep {
	steps := make([]CollapseStep, 0, len(lc.Layers))
	holder := sig.PublicKey(lc.Binding.Holder)
	for i, layer := range lc.Layers {
		steps = append(steps, CollapseStep{
			PrevHolder: holder,
			NextHolder: layer.NextHolder,
			Message:    layerMessage(lc.Base.Pub, i, layer.NextHolder),
			HolderSig:  layer.HolderSig,
			GroupSig:   layer.GroupSig,
		})
		holder = layer.NextHolder
	}
	return steps
}

// CollapseStep is one verified hop extracted from a layer chain.
type CollapseStep struct {
	PrevHolder sig.PublicKey
	NextHolder sig.PublicKey
	Message    []byte
	HolderSig  []byte
	GroupSig   groupsig.Signature
}

// zeroTime skips expiry enforcement: layered hops happen offline, where
// renewal is impossible by definition; freshness is re-established at
// collapse.
func zeroTime() time.Time { return time.Time{} }
