package layered

import (
	"errors"
	"testing"

	"whopay/internal/coin"
	"whopay/internal/groupsig"
	"whopay/internal/sig"
)

type fixture struct {
	suite    sig.Suite
	broker   sig.KeyPair
	mgr      *groupsig.Manager
	groupPub sig.PublicKey
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	scheme := sig.NewNull(5000)
	suite := sig.Suite{Scheme: scheme}
	broker, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := groupsig.NewManager(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{suite: suite, broker: broker, mgr: mgr, groupPub: mgr.GroupPublicKey()}
}

// mintLayered builds a base coin bound to an initial holder.
func (f *fixture) mintLayered(t *testing.T) (*Coin, sig.KeyPair) {
	t.Helper()
	coinKeys, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	holder, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	base := coin.Coin{Owner: "owner", Pub: coinKeys.Public, Value: 1}
	base.Sig, err = f.suite.Sign(f.broker.Private, base.Message())
	if err != nil {
		t.Fatal(err)
	}
	binding := coin.Binding{CoinPub: coinKeys.Public, Holder: holder.Public, Seq: 10, Expiry: 99}
	binding.Sig, err = f.suite.Sign(coinKeys.Private, binding.Message())
	if err != nil {
		t.Fatal(err)
	}
	return &Coin{Base: base, Binding: binding}, holder
}

func (f *fixture) member(t *testing.T, id string) *groupsig.MemberKey {
	t.Helper()
	mk, err := f.mgr.Enroll(id, 16)
	if err != nil {
		t.Fatal(err)
	}
	return mk
}

func TestHopAndVerify(t *testing.T) {
	f := newFixture(t)
	lc, holder := f.mintLayered(t)
	alice := f.member(t, "alice")

	next, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	hopped, err := Hop(f.suite, lc, holder.Private, alice, next.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := hopped.Verify(f.suite, f.broker.Public, f.groupPub, 0); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !hopped.CurrentHolder().Equal(next.Public) {
		t.Fatal("chain head wrong")
	}
	// Original untouched.
	if len(lc.Layers) != 0 {
		t.Fatal("Hop mutated its input")
	}
}

func TestMultiHopChain(t *testing.T) {
	f := newFixture(t)
	lc, holder := f.mintLayered(t)
	priv := holder.Private
	for i := 0; i < 5; i++ {
		member := f.member(t, "peer")
		next, err := f.suite.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		lc, err = Hop(f.suite, lc, priv, member, next.Public, 0)
		if err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		priv = next.Private
	}
	if err := lc.Verify(f.suite, f.broker.Public, f.groupPub, 0); err != nil {
		t.Fatal(err)
	}
	if len(lc.Layers) != 5 {
		t.Fatalf("layers = %d", len(lc.Layers))
	}
}

func TestCoinsGrowPerHop(t *testing.T) {
	f := newFixture(t)
	lc, holder := f.mintLayered(t)
	alice := f.member(t, "alice")
	size0 := lc.Size()
	next, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	hopped, err := Hop(f.suite, lc, holder.Private, alice, next.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hopped.Size() <= size0 {
		t.Fatal("layered coin did not grow — the paper's size concern should be observable")
	}
}

func TestMaxLayersEnforced(t *testing.T) {
	f := newFixture(t)
	lc, holder := f.mintLayered(t)
	priv := holder.Private
	member := f.member(t, "m")
	var err error
	for i := 0; i < 3; i++ {
		next, kerr := f.suite.GenerateKey()
		if kerr != nil {
			t.Fatal(kerr)
		}
		lc, err = Hop(f.suite, lc, priv, member, next.Public, 3)
		if err != nil {
			t.Fatalf("hop %d: %v", i, err)
		}
		priv = next.Private
	}
	next, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Hop(f.suite, lc, priv, member, next.Public, 3); !errors.Is(err, ErrTooManyLayers) {
		t.Fatalf("got %v, want ErrTooManyLayers", err)
	}
	// Verification with a lower cap also rejects.
	if err := lc.Verify(f.suite, f.broker.Public, f.groupPub, 2); !errors.Is(err, ErrTooManyLayers) {
		t.Fatalf("got %v, want ErrTooManyLayers", err)
	}
}

func TestWrongHolderKeyRejected(t *testing.T) {
	f := newFixture(t)
	lc, _ := f.mintLayered(t)
	member := f.member(t, "mallory")
	wrong, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	next, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Hop(f.suite, lc, wrong.Private, member, next.Public, 0); !errors.Is(err, ErrNotHolder) {
		t.Fatalf("got %v, want ErrNotHolder", err)
	}
}

func TestTamperedLayerRejected(t *testing.T) {
	f := newFixture(t)
	lc, holder := f.mintLayered(t)
	member := f.member(t, "alice")
	next, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	hopped, err := Hop(f.suite, lc, holder.Private, member, next.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Redirect the layer to an attacker key: holder sig breaks.
	attacker, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	hopped.Layers[0].NextHolder = attacker.Public
	if err := hopped.Verify(f.suite, f.broker.Public, f.groupPub, 0); !errors.Is(err, ErrBadChain) {
		t.Fatalf("got %v, want ErrBadChain", err)
	}
}

func TestDoubleSpendForksBothVerify(t *testing.T) {
	// The paper's warning made concrete: a holder can fork the chain
	// offline and BOTH forks verify — detection only happens at
	// collapse/deposit. This test documents the accepted weakness.
	f := newFixture(t)
	lc, holder := f.mintLayered(t)
	member := f.member(t, "cheater")
	n1, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	n2, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	fork1, err := Hop(f.suite, lc, holder.Private, member, n1.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	fork2, err := Hop(f.suite, lc, holder.Private, member, n2.Public, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fork1.Verify(f.suite, f.broker.Public, f.groupPub, 0) != nil ||
		fork2.Verify(f.suite, f.broker.Public, f.groupPub, 0) != nil {
		t.Fatal("forks should both verify offline — that is the documented risk")
	}
	// Fairness survives: the judge opens the cheater from either fork.
	for _, fork := range []*Coin{fork1, fork2} {
		steps := fork.CollapseProofs()
		id, err := f.mgr.Open(steps[0].Message, steps[0].GroupSig)
		if err != nil {
			t.Fatal(err)
		}
		if id != "cheater" {
			t.Fatalf("opened %q", id)
		}
	}
}

func TestCollapseProofsChain(t *testing.T) {
	f := newFixture(t)
	lc, holder := f.mintLayered(t)
	priv := holder.Private
	for i := 0; i < 3; i++ {
		member := f.member(t, "peer")
		next, err := f.suite.GenerateKey()
		if err != nil {
			t.Fatal(err)
		}
		var err2 error
		lc, err2 = Hop(f.suite, lc, priv, member, next.Public, 0)
		if err2 != nil {
			t.Fatal(err2)
		}
		priv = next.Private
	}
	steps := lc.CollapseProofs()
	if len(steps) != 3 {
		t.Fatalf("steps = %d", len(steps))
	}
	// Chain continuity: each step's next holder is the following step's
	// prev holder, and every signature verifies.
	prev := sig.PublicKey(lc.Binding.Holder)
	for i, s := range steps {
		if !s.PrevHolder.Equal(prev) {
			t.Fatalf("step %d discontinuous", i)
		}
		if err := f.suite.Verify(s.PrevHolder, s.Message, s.HolderSig); err != nil {
			t.Fatalf("step %d holder sig: %v", i, err)
		}
		if err := groupsig.Verify(f.suite, f.groupPub, s.Message, s.GroupSig); err != nil {
			t.Fatalf("step %d group sig: %v", i, err)
		}
		prev = s.NextHolder
	}
	if !lc.CurrentHolder().Equal(prev) {
		t.Fatal("collapse does not end at the chain head")
	}
}

func TestForgedBaseRejected(t *testing.T) {
	f := newFixture(t)
	lc, _ := f.mintLayered(t)
	lc.Base.Value = 1000
	if err := lc.Verify(f.suite, f.broker.Public, f.groupPub, 0); !errors.Is(err, ErrBadChain) {
		t.Fatalf("got %v, want ErrBadChain", err)
	}
}
