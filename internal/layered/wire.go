package layered

import (
	"fmt"

	"whopay/internal/coin"
	"whopay/internal/groupsig"
	"whopay/internal/sig"
	"whopay/internal/wire"
)

// Fixed-layout wire codecs (internal/wire) for layered coins. The hop chain
// is bounded on decode so a corrupt length cannot drive allocation past
// what the input itself could justify.

// AppendWire appends one layer's wire encoding to dst.
func (l *Layer) AppendWire(dst []byte) []byte {
	dst = wire.AppendBytes(dst, l.NextHolder)
	dst = wire.AppendBytes(dst, l.HolderSig)
	dst = l.GroupSig.AppendWire(dst)
	return dst
}

// DecodeWireLayer decodes a layer written by AppendWire.
func DecodeWireLayer(d *wire.Decoder) (Layer, error) {
	var l Layer
	var err error
	var raw []byte
	if raw, err = d.Bytes(); err != nil {
		return l, err
	}
	l.NextHolder = sig.PublicKey(raw)
	if l.HolderSig, err = d.Bytes(); err != nil {
		return l, err
	}
	if l.GroupSig, err = groupsig.DecodeWireSignature(d); err != nil {
		return l, err
	}
	return l, nil
}

// AppendWire appends the layered coin's wire encoding to dst.
func (lc *Coin) AppendWire(dst []byte) []byte {
	dst = lc.Base.AppendWire(dst)
	dst = lc.Binding.AppendWire(dst)
	dst = wire.AppendUvarint(dst, uint64(len(lc.Layers)))
	for i := range lc.Layers {
		dst = lc.Layers[i].AppendWire(dst)
	}
	return dst
}

// DecodeWireCoin decodes a layered coin written by AppendWire.
func DecodeWireCoin(d *wire.Decoder) (Coin, error) {
	var lc Coin
	var err error
	if lc.Base, err = coin.DecodeWireCoin(d); err != nil {
		return lc, err
	}
	if lc.Binding, err = coin.DecodeWireBinding(d); err != nil {
		return lc, err
	}
	n, err := d.Uvarint()
	if err != nil {
		return lc, err
	}
	// Each layer occupies several bytes at minimum; a count exceeding the
	// remaining input is corrupt, and pre-checking it keeps the allocation
	// proportional to real data.
	if n > uint64(d.Len()) {
		return lc, fmt.Errorf("%w: %d layers declared, %d bytes remain", wire.ErrMalformed, n, d.Len())
	}
	if n > 0 {
		lc.Layers = make([]Layer, 0, n)
		for i := uint64(0); i < n; i++ {
			l, err := DecodeWireLayer(d)
			if err != nil {
				return lc, fmt.Errorf("layer %d: %w", i, err)
			}
			lc.Layers = append(lc.Layers, l)
		}
	}
	return lc, nil
}
