package bus_test

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/bus/faultbus"
	"whopay/internal/obs"
)

// TestRetryCallerObsMetricsParity drives a RetryCaller through a faultbus
// drop+latency schedule and asserts the obs CounterFunc bridge reports
// exactly the attempt and retry counts that actually happened — the same
// registration shape core.NewPeer uses for whopay_retries_total. Retries
// were behavior-tested before; this pins the metrics down too: the fault
// injector's own link counters, the server's handler invocations, the
// RetryCaller's atomics, and the registry exposition must all agree.
func TestRetryCallerObsMetricsParity(t *testing.T) {
	const (
		calls       = 300
		maxAttempts = 6
		seed        = 7
	)
	fb := faultbus.New(bus.NewMemory(), seed)

	var handled atomic.Int64
	_, err := fb.Listen("svc", func(from bus.Address, msg any) (any, error) {
		handled.Add(1)
		return "ok", nil
	})
	if err != nil {
		t.Fatalf("listen svc: %v", err)
	}
	cli, err := fb.Listen("cli", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatalf("listen cli: %v", err)
	}

	fb.SetLink("cli", "svc", faultbus.Faults{
		DropRequest: 0.25,
		DropReply:   0.10,
		LatencyMin:  time.Microsecond,
		LatencyMax:  50 * time.Microsecond,
	})

	var sleeps atomic.Int64
	rc := bus.NewRetryCaller(cli, bus.RetryPolicy{
		MaxAttempts: maxAttempts,
		BaseDelay:   time.Millisecond,
		Rand:        rand.New(rand.NewSource(seed)),
		Sleep:       func(time.Duration) { sleeps.Add(1) },
	})

	// The bridge under test: the registry reads the caller's live atomics
	// at exposition time, exactly as core.NewPeer registers them.
	reg := obs.NewRegistry()
	lbl := obs.Labels{"entity": "cli"}
	reg.CounterFunc("whopay_retries_total", lbl, rc.Retries)
	reg.CounterFunc("whopay_retry_attempts_total", lbl, rc.Attempts)

	var ok, failed int64
	for i := 0; i < calls; i++ {
		if _, err := rc.Call("svc", i); err == nil {
			ok++
		} else {
			failed++
		}
	}

	st := fb.Stats("cli", "svc")
	if st.DroppedRequests == 0 || st.DroppedReplies == 0 {
		t.Fatalf("schedule injected nothing (stats %+v) — the test is not exercising retries", st)
	}
	if rc.Retries() == 0 || ok == 0 {
		t.Fatalf("degenerate run: retries=%d ok=%d failed=%d", rc.Retries(), ok, failed)
	}

	// Every attempt the caller issued traversed the injected link exactly
	// once, and the handler ran for every attempt whose request survived.
	if st.Calls != rc.Attempts() {
		t.Fatalf("faultbus saw %d calls, RetryCaller issued %d attempts", st.Calls, rc.Attempts())
	}
	if want := st.Calls - st.DroppedRequests; handled.Load() != want {
		t.Fatalf("handler ran %d times, want %d (attempts minus dropped requests)", handled.Load(), want)
	}
	// Attempts decompose exactly: one first try per call plus the retries.
	if rc.Attempts() != calls+rc.Retries() {
		t.Fatalf("attempts %d != calls %d + retries %d", rc.Attempts(), calls, rc.Retries())
	}
	if sleeps.Load() != rc.Retries() {
		t.Fatalf("backoff slept %d times for %d retries", sleeps.Load(), rc.Retries())
	}

	// Metrics parity: the registry must expose the same numbers.
	if v, found := reg.Value("whopay_retries_total", lbl); !found || v != float64(rc.Retries()) {
		t.Fatalf("whopay_retries_total = %v (found=%v), want %d", v, found, rc.Retries())
	}
	if v, found := reg.Value("whopay_retry_attempts_total", lbl); !found || v != float64(rc.Attempts()) {
		t.Fatalf("whopay_retry_attempts_total = %v (found=%v), want %d", v, found, rc.Attempts())
	}
}
