package bus

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// flakyCaller fails with failErr for the first failures calls, then echoes.
type flakyCaller struct {
	failures int
	failErr  error
	calls    int
}

func (f *flakyCaller) Call(to Address, msg any) (any, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, f.failErr
	}
	return msg, nil
}

func fastPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Rand:        rand.New(rand.NewSource(1)),
		Sleep:       func(time.Duration) {},
	}
}

func TestRetryRecoversFromTransientFailure(t *testing.T) {
	inner := &flakyCaller{failures: 2, failErr: fmt.Errorf("%w: x", ErrUnreachable)}
	rc := NewRetryCaller(inner, fastPolicy())
	resp, err := rc.Call("x", "hello")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp != "hello" {
		t.Fatalf("resp = %v", resp)
	}
	if inner.calls != 3 {
		t.Fatalf("inner calls = %d, want 3", inner.calls)
	}
	if rc.Retries() != 2 || rc.Attempts() != 3 {
		t.Fatalf("retries=%d attempts=%d", rc.Retries(), rc.Attempts())
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	inner := &flakyCaller{failures: 100, failErr: fmt.Errorf("%w: x", ErrUnreachable)}
	rc := NewRetryCaller(inner, fastPolicy())
	_, err := rc.Call("x", "hello")
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v, want ErrUnreachable", err)
	}
	if inner.calls != 4 {
		t.Fatalf("inner calls = %d, want MaxAttempts=4", inner.calls)
	}
}

func TestRetryNeverReplaysProtocolRejections(t *testing.T) {
	sentinel := errors.New("proto: no")
	for _, failErr := range []error{
		WrapRemote(sentinel),
		ErrClosed,
	} {
		inner := &flakyCaller{failures: 100, failErr: failErr}
		rc := NewRetryCaller(inner, fastPolicy())
		_, err := rc.Call("x", "hello")
		if err == nil {
			t.Fatalf("%v: expected error", failErr)
		}
		if inner.calls != 1 {
			t.Fatalf("%v: inner calls = %d, want 1 (no retry)", failErr, inner.calls)
		}
		if rc.Retries() != 0 {
			t.Fatalf("%v: retries = %d", failErr, rc.Retries())
		}
	}
}

// timeoutErr mimics a net.Error timeout.
type timeoutErr struct{}

func (timeoutErr) Error() string { return "i/o timeout" }
func (timeoutErr) Timeout() bool { return true }

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{fmt.Errorf("%w: b", ErrUnreachable), true},
		{timeoutErr{}, true},
		{fmt.Errorf("dial: %w", timeoutErr{}), true},
		{ErrClosed, false},
		{WrapRemote(errors.New("rejected")), false},
		// A relayed transport failure inside a remote error is still a
		// protocol-level reply: the relay hop ran.
		{WrapRemote(fmt.Errorf("%w: c", ErrUnreachable)), false},
		{errors.New("other"), false},
	}
	for _, c := range cases {
		if got := Transient(c.err); got != c.want {
			t.Errorf("Transient(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryBackoffIsCappedAndJittered(t *testing.T) {
	var slept []time.Duration
	p := RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Factor:      2,
		Jitter:      0.5,
		Rand:        rand.New(rand.NewSource(7)),
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	}
	inner := &flakyCaller{failures: 100, failErr: fmt.Errorf("%w: x", ErrUnreachable)}
	rc := NewRetryCaller(inner, p)
	if _, err := rc.Call("x", "m"); !errors.Is(err, ErrUnreachable) {
		t.Fatal(err)
	}
	if len(slept) != 5 {
		t.Fatalf("slept %d times, want 5", len(slept))
	}
	// Nominal delays: 10, 20, 40, 40, 40ms; jitter shrinks each by at most
	// half.
	nominal := []time.Duration{10, 20, 40, 40, 40}
	for i, d := range slept {
		hi := nominal[i] * time.Millisecond
		lo := hi / 2
		if d < lo || d > hi {
			t.Errorf("sleep %d = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
}

func TestRetryCallerOverMemoryBus(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("srv", echoHandler); err != nil {
		t.Fatal(err)
	}
	cli, err := net.Listen("cli", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	rc := NewRetryCaller(cli, fastPolicy())

	// Destination offline: retried, then surfaces ErrUnreachable.
	net.SetOnline("srv", false)
	if _, err := rc.Call("srv", 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if rc.Retries() != 3 {
		t.Fatalf("retries = %d, want 3", rc.Retries())
	}
	net.SetOnline("srv", true)
	resp, err := rc.Call("srv", 2)
	if err != nil || resp != 2 {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
}
