package bus_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/bus/faultbus"
)

// The redirect sentinels stand in for core's ErrNotLeader/ErrWrongShard:
// the bus layer only knows codes, not the protocol, so the test registers
// its own.
var (
	errTestMoved   = errors.New("redirect_test: moved")
	errTestRefused = errors.New("redirect_test: refused")
)

func init() {
	bus.RegisterErrorCode("redirect_test.moved", errTestMoved)
	bus.RegisterErrorCode("redirect_test.refused", errTestRefused)
	bus.RegisterRedirectCode("redirect_test.moved")
}

// noSleep makes retry backoff instantaneous.
func noSleep(time.Duration) {}

// TestRedirectHintRoundTrip pins the hint encoding across a bus hop: the
// handler's wrapped sentinel must surface at the caller with errors.Is
// intact and the hint address recoverable.
func TestRedirectHintRoundTrip(t *testing.T) {
	net := bus.NewMemory()
	_, err := net.Listen("old", func(from bus.Address, msg any) (any, error) {
		return nil, bus.WithRedirect(errTestMoved, "new")
	})
	if err != nil {
		t.Fatal(err)
	}
	caller, err := net.Listen("caller", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	_, callErr := caller.Call("old", "hello")
	if callErr == nil {
		t.Fatal("want redirect error, got nil")
	}
	if !errors.Is(callErr, errTestMoved) {
		t.Fatalf("errors.Is lost the sentinel: %v", callErr)
	}
	if !bus.Redirectable(callErr) {
		t.Fatalf("Redirectable(%v) = false", callErr)
	}
	hint, ok := bus.RedirectHint(callErr)
	if !ok || hint != "new" {
		t.Fatalf("RedirectHint = %q, %v; want %q, true", hint, ok, "new")
	}

	// A string-only transport keeps only Msg+Code; rebuild such an error
	// and check the hint still parses.
	var remote *bus.RemoteError
	if !errors.As(callErr, &remote) {
		t.Fatal("no RemoteError in chain")
	}
	wireErr := &bus.RemoteError{Msg: remote.Msg, Code: remote.Code}
	if !bus.Redirectable(wireErr) {
		t.Fatal("wire-rebuilt error lost redirectability")
	}
	if hint, ok := bus.RedirectHint(wireErr); !ok || hint != "new" {
		t.Fatalf("wire-rebuilt hint = %q, %v", hint, ok)
	}
}

// TestRetryCallerFollowsRedirect drives a RetryCaller through a faultbus:
// the old leader answers every call with a redirect to the new leader, the
// link to the new leader drops the first request, and the call must still
// land — redirect hop first, then a transient retry on the faulted link.
func TestRetryCallerFollowsRedirect(t *testing.T) {
	inner := bus.NewMemory()
	fb := faultbus.New(inner, 1)

	if _, err := fb.Listen("leader-old", func(bus.Address, any) (any, error) {
		return nil, bus.WithRedirect(errTestMoved, "leader-new")
	}); err != nil {
		t.Fatal(err)
	}
	var served atomic.Int64
	if _, err := fb.Listen("leader-new", func(_ bus.Address, msg any) (any, error) {
		served.Add(1)
		return msg, nil
	}); err != nil {
		t.Fatal(err)
	}
	caller, err := fb.Listen("caller", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	// The request on caller→leader-new is dropped until the first backoff
	// sleep lifts the fault: the redirect hop fails transiently, and the
	// retry loop must re-dial the redirected target, not the original
	// address. Sleep runs on the calling goroutine, so the clear is
	// deterministic.
	fb.SetLink("caller", "leader-new", faultbus.Faults{DropRequest: 1})
	rc := bus.NewRetryCaller(caller, bus.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Nanosecond,
		Sleep: func(time.Duration) {
			fb.ClearLink("caller", "leader-new")
		},
	})

	resp, err := rc.Call("leader-old", "payload")
	if err != nil {
		t.Fatalf("Call through redirect: %v", err)
	}
	if resp != "payload" {
		t.Fatalf("resp = %v", resp)
	}
	if served.Load() == 0 {
		t.Fatal("new leader never served the call")
	}
	if got := rc.Redirects(); got < 1 {
		t.Fatalf("Redirects() = %d, want >= 1", got)
	}
	if got := rc.Retries(); got < 1 {
		t.Fatalf("Retries() = %d, want >= 1 (dropped redirect hop must be retried)", got)
	}
}

// TestRetryCallerBoundsRedirects pins the hop bound: two endpoints that
// point at each other forever must not loop — the caller gives up after
// MaxRedirects hops and surfaces the redirect error.
func TestRetryCallerBoundsRedirects(t *testing.T) {
	net := bus.NewMemory()
	var callsA, callsB atomic.Int64
	if _, err := net.Listen("a", func(bus.Address, any) (any, error) {
		callsA.Add(1)
		return nil, bus.WithRedirect(errTestMoved, "b")
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("b", func(bus.Address, any) (any, error) {
		callsB.Add(1)
		return nil, bus.WithRedirect(errTestMoved, "a")
	}); err != nil {
		t.Fatal(err)
	}
	caller, err := net.Listen("caller", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	rc := bus.NewRetryCaller(caller, bus.RetryPolicy{
		MaxAttempts:  2,
		MaxRedirects: 3,
		BaseDelay:    time.Nanosecond,
		Sleep:        noSleep,
	})
	_, err = rc.Call("a", "ping")
	if err == nil {
		t.Fatal("want error after redirect loop")
	}
	if !errors.Is(err, errTestMoved) {
		t.Fatalf("want redirect sentinel, got %v", err)
	}
	if got := rc.Redirects(); got != 3 {
		t.Fatalf("Redirects() = %d, want exactly MaxRedirects=3", got)
	}
	// Hintless-redirect backoff applies once hops are exhausted, bounded
	// by MaxAttempts.
	total := callsA.Load() + callsB.Load()
	if total > int64(2+3) {
		t.Fatalf("issued %d calls, want <= MaxAttempts+MaxRedirects", total)
	}
}

// TestRetryCallerRedirectWithoutHint pins the failover-window behavior: a
// redirectable rejection with no hint is retried with backoff (the cluster
// may elect a leader any moment), unlike ordinary protocol rejections,
// which stay final.
func TestRetryCallerRedirectWithoutHint(t *testing.T) {
	net := bus.NewMemory()
	var calls atomic.Int64
	if _, err := net.Listen("srv", func(bus.Address, any) (any, error) {
		if calls.Add(1) < 3 {
			return nil, errTestMoved // no hint yet: election in progress
		}
		return "ok", nil
	}); err != nil {
		t.Fatal(err)
	}
	caller, err := net.Listen("caller", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	rc := bus.NewRetryCaller(caller, bus.RetryPolicy{
		MaxAttempts: 4,
		BaseDelay:   time.Nanosecond,
		Sleep:       noSleep,
	})
	resp, err := rc.Call("srv", "ping")
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if resp != "ok" {
		t.Fatalf("resp = %v", resp)
	}
	if calls.Load() != 3 {
		t.Fatalf("handler ran %d times, want 3", calls.Load())
	}

	// Ordinary rejections must remain final: one attempt, no retries.
	var refused atomic.Int64
	if _, err := net.Listen("refuser", func(bus.Address, any) (any, error) {
		refused.Add(1)
		return nil, errTestRefused
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Call("refuser", "ping"); !errors.Is(err, errTestRefused) {
		t.Fatalf("want refusal, got %v", err)
	}
	if refused.Load() != 1 {
		t.Fatalf("refuser ran %d times, want 1", refused.Load())
	}
}
