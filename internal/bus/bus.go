// Package bus abstracts peer-to-peer messaging for WhoPay. Every protocol
// entity (broker, judge, peers, DHT nodes, indirection servers) listens on
// an Address and exchanges synchronous request/response messages.
//
// Two implementations exist: Memory (this file) — an in-process network with
// per-address message counters and offline simulation, used by tests and by
// the load simulator (the paper's communication cost metric is "number of
// messages sent/received", which Memory counts exactly) — and the TCP/gob
// transport in the tcpbus subpackage used by the networked daemons.
package bus

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Address names an endpoint on a Network.
type Address string

// Handler processes one request and produces a response. Handlers may call
// other endpoints on the same network; implementations must therefore not
// hold network-level locks while a handler runs.
type Handler func(from Address, msg any) (any, error)

// Endpoint is a registered network participant.
type Endpoint interface {
	// Addr returns the endpoint's own address.
	Addr() Address
	// Call sends msg to the endpoint listening at to and waits for its
	// response.
	Call(to Address, msg any) (any, error)
	// Close deregisters the endpoint.
	Close() error
}

// Network registers endpoints.
type Network interface {
	Listen(addr Address, h Handler) (Endpoint, error)
}

// Caller is the outbound half of an Endpoint. Decorators (the retry layer,
// instrumentation) wrap a Caller without owning the endpoint's lifecycle.
type Caller interface {
	Call(to Address, msg any) (any, error)
}

// Errors returned by Network implementations.
var (
	// ErrUnreachable is returned by Call when the destination is unknown
	// or offline.
	ErrUnreachable = errors.New("bus: destination unreachable")
	// ErrClosed is returned by Call on a closed endpoint.
	ErrClosed = errors.New("bus: endpoint closed")
	// ErrAddressInUse is returned by Listen for duplicate addresses.
	ErrAddressInUse = errors.New("bus: address already in use")
)

// RemoteError carries an application error back across a Call. Handlers'
// returned errors are wrapped so callers can distinguish transport failure
// (ErrUnreachable) from protocol rejection.
//
// Code, when non-empty, is the machine-readable code of a sentinel error
// registered with RegisterErrorCode; Unwrap resolves it so errors.Is works
// on protocol sentinels even after a hop through a transport that can only
// carry strings (tcpbus).
type RemoteError struct {
	Msg  string
	Code string

	// cause is the handler's original error when the transport kept it
	// in-process (Memory); it preserves the full chain for errors.Is.
	cause error
}

// Error implements error.
func (e *RemoteError) Error() string { return "bus: remote error: " + e.Msg }

// Unwrap exposes the handler's error — the in-process cause when available,
// otherwise the sentinel registered for Code.
func (e *RemoteError) Unwrap() error {
	if e.cause != nil {
		return e.cause
	}
	if e.Code != "" {
		return sentinelForCode(e.Code)
	}
	return nil
}

// WrapRemote wraps a handler error for return to a caller, capturing the
// sentinel code (for wire transports) and the original chain (in-process).
func WrapRemote(err error) *RemoteError {
	return &RemoteError{Msg: err.Error(), Code: ErrorCode(err), cause: err}
}

// codeRegistry maps stable wire codes to sentinel errors. Registration
// happens in package inits (core registers its protocol sentinels), so a
// plain mutex suffices.
var (
	codeMu       sync.RWMutex
	codeToErr    = map[string]error{}
	registeredIn []string // registration order, for deterministic ErrorCode
)

// RegisterErrorCode maps a stable machine-readable code to a sentinel
// error. Transports carry the code across the wire so errors.Is(err,
// sentinel) keeps working remotely. Codes must be unique; re-registering a
// code replaces its sentinel.
func RegisterErrorCode(code string, sentinel error) {
	if code == "" || sentinel == nil {
		return
	}
	codeMu.Lock()
	defer codeMu.Unlock()
	if _, exists := codeToErr[code]; !exists {
		registeredIn = append(registeredIn, code)
	}
	codeToErr[code] = sentinel
}

// ErrorCode returns the registered code for the first sentinel err matches
// (in registration order), or "" when none does.
func ErrorCode(err error) string {
	if err == nil {
		return ""
	}
	codeMu.RLock()
	defer codeMu.RUnlock()
	for _, code := range registeredIn {
		if errors.Is(err, codeToErr[code]) {
			return code
		}
	}
	return ""
}

// sentinelForCode resolves a wire code back to its sentinel (nil if
// unknown — e.g. peers running different versions).
func sentinelForCode(code string) error {
	codeMu.RLock()
	defer codeMu.RUnlock()
	return codeToErr[code]
}

// MsgStats counts one endpoint's traffic. The paper's communication cost is
// proportional to messages sent/received; a request and its response each
// count as one message for both parties.
type MsgStats struct {
	Sent     int64
	Received int64
}

// Total returns sent plus received.
func (s MsgStats) Total() int64 { return s.Sent + s.Received }

type memNode struct {
	handler Handler
	online  atomic.Bool
	sent    atomic.Int64
	recv    atomic.Int64
}

// Memory is an in-process Network. Calls are synchronous function
// invocations; per-address traffic counters and an online/offline switch
// support the churn simulation. Safe for concurrent use.
type Memory struct {
	mu    sync.RWMutex
	nodes map[Address]*memNode
}

var _ Network = (*Memory)(nil)

// NewMemory returns an empty in-process network.
func NewMemory() *Memory {
	return &Memory{nodes: make(map[Address]*memNode)}
}

// Listen implements Network. New endpoints start online.
func (m *Memory) Listen(addr Address, h Handler) (Endpoint, error) {
	if h == nil {
		return nil, errors.New("bus: nil handler")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.nodes[addr]; ok {
		return nil, fmt.Errorf("%w: %s", ErrAddressInUse, addr)
	}
	n := &memNode{handler: h}
	n.online.Store(true)
	m.nodes[addr] = n
	return &memEndpoint{net: m, addr: addr, node: n}, nil
}

// SetOnline toggles reachability of addr. Calls to an offline address fail
// with ErrUnreachable; the endpoint itself may still initiate calls (the
// simulator never lets offline peers initiate, but the bus does not police
// that).
func (m *Memory) SetOnline(addr Address, online bool) {
	m.mu.RLock()
	n := m.nodes[addr]
	m.mu.RUnlock()
	if n != nil {
		n.online.Store(online)
	}
}

// Online reports whether addr is registered and online.
func (m *Memory) Online(addr Address) bool {
	m.mu.RLock()
	n := m.nodes[addr]
	m.mu.RUnlock()
	return n != nil && n.online.Load()
}

// Stats returns the traffic counters for addr (zero stats if unknown).
func (m *Memory) Stats(addr Address) MsgStats {
	m.mu.RLock()
	n := m.nodes[addr]
	m.mu.RUnlock()
	if n == nil {
		return MsgStats{}
	}
	return MsgStats{Sent: n.sent.Load(), Received: n.recv.Load()}
}

// TotalMessages returns the number of messages carried so far (each
// request and each response is one message).
func (m *Memory) TotalMessages() int64 {
	m.mu.RLock()
	defer m.mu.RUnlock()
	var total int64
	for _, n := range m.nodes {
		total += n.sent.Load()
	}
	return total
}

func (m *Memory) lookup(addr Address) *memNode {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.nodes[addr]
}

type memEndpoint struct {
	net    *Memory
	addr   Address
	node   *memNode
	closed atomic.Bool
}

var _ Endpoint = (*memEndpoint)(nil)

// Addr implements Endpoint.
func (e *memEndpoint) Addr() Address { return e.addr }

// Call implements Endpoint. The request and the response each count as one
// message on both parties' counters.
func (e *memEndpoint) Call(to Address, msg any) (any, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	dst := e.net.lookup(to)
	if dst == nil || !dst.online.Load() {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	// Request message.
	e.node.sent.Add(1)
	dst.recv.Add(1)
	resp, err := dst.handler(e.addr, msg)
	// Response message.
	dst.sent.Add(1)
	e.node.recv.Add(1)
	if err != nil {
		return nil, WrapRemote(err)
	}
	return resp, nil
}

// Close implements Endpoint.
func (e *memEndpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	e.net.mu.Lock()
	delete(e.net.nodes, e.addr)
	e.net.mu.Unlock()
	return nil
}
