package bus

import (
	"errors"
	"fmt"
	"strings"
	"sync"
)

// Redirect support: a handler that cannot serve a request — it is not the
// shard that owns the key, or not the current leader of its replica group —
// rejects with a registered redirect sentinel and, when it knows a better
// destination, attaches a hint address. The RetryCaller follows hints for a
// bounded number of hops, so clients converge on the right endpoint without
// any routing logic of their own.
//
// Hints must survive transports that carry errors as strings (tcpbus), so
// the address is embedded in the error text as a trailing
// " [redirect=<addr>]" marker and parsed back out on the calling side.

const (
	redirectOpen  = " [redirect="
	redirectClose = "]"
)

// redirectCodes is the set of wire error codes classified as
// retryable-with-redirect. Like the error-code registry, registration
// happens in package inits (core registers its not-leader and wrong-shard
// sentinels).
var (
	redirectMu    sync.RWMutex
	redirectCodes = map[string]bool{}
)

// RegisterRedirectCode marks a wire error code (previously registered with
// RegisterErrorCode) as retryable-with-redirect: a RetryCaller that sees it
// re-issues the call, following the embedded hint address when present.
func RegisterRedirectCode(code string) {
	if code == "" {
		return
	}
	redirectMu.Lock()
	defer redirectMu.Unlock()
	redirectCodes[code] = true
}

// Redirectable reports whether err carries a registered redirect code.
func Redirectable(err error) bool {
	code := errCode(err)
	if code == "" {
		return false
	}
	redirectMu.RLock()
	defer redirectMu.RUnlock()
	return redirectCodes[code]
}

// errCode extracts the wire code from err: the RemoteError's carried code
// when it crossed a bus, otherwise the registered code of the sentinel.
func errCode(err error) string {
	if err == nil {
		return ""
	}
	var remote *RemoteError
	if errors.As(err, &remote) && remote.Code != "" {
		return remote.Code
	}
	return ErrorCode(err)
}

// WithRedirect annotates err with a hint address. The wrapping preserves
// errors.Is on the sentinel chain; the hint travels inside the message so
// string-only transports keep it.
func WithRedirect(err error, to Address) error {
	if err == nil || to == "" {
		return err
	}
	return fmt.Errorf("%w%s%s%s", err, redirectOpen, to, redirectClose)
}

// RedirectHint extracts the hint address embedded by WithRedirect, looking
// through RemoteError wrapping. It reports false when err carries no hint.
func RedirectHint(err error) (Address, bool) {
	if err == nil {
		return "", false
	}
	msg := err.Error()
	var remote *RemoteError
	if errors.As(err, &remote) {
		msg = remote.Msg
	}
	i := strings.LastIndex(msg, redirectOpen)
	if i < 0 {
		return "", false
	}
	rest := msg[i+len(redirectOpen):]
	j := strings.Index(rest, redirectClose)
	if j <= 0 {
		return "", false
	}
	return Address(rest[:j]), true
}
