package faultbus

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"whopay/internal/bus"
)

// world is a Memory network wrapped by a faultbus, with a counting handler
// on "srv" and a caller endpoint on "cli".
type world struct {
	mem     *bus.Memory
	fb      *Network
	cli     bus.Endpoint
	handled atomic.Int64
}

func newWorld(t *testing.T, seed int64) *world {
	t.Helper()
	w := &world{mem: bus.NewMemory()}
	w.fb = New(w.mem, seed)
	_, err := w.fb.Listen("srv", func(from bus.Address, msg any) (any, error) {
		w.handled.Add(1)
		return msg, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := w.fb.Listen("cli", func(from bus.Address, msg any) (any, error) { return msg, nil })
	if err != nil {
		t.Fatal(err)
	}
	w.cli = cli
	return w
}

func TestPassthroughWithoutFaults(t *testing.T) {
	w := newWorld(t, 1)
	for i := 0; i < 10; i++ {
		resp, err := w.cli.Call("srv", i)
		if err != nil || resp != i {
			t.Fatalf("call %d: resp=%v err=%v", i, resp, err)
		}
	}
	st := w.fb.Stats("cli", "srv")
	if st.Calls != 10 || st.Injected() != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if w.handled.Load() != 10 {
		t.Fatalf("handled = %d", w.handled.Load())
	}
}

func TestDropRequestNeverReachesHandler(t *testing.T) {
	w := newWorld(t, 1)
	w.fb.SetLink("cli", "srv", Faults{DropRequest: 1})
	if _, err := w.cli.Call("srv", 1); !errors.Is(err, bus.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if w.handled.Load() != 0 {
		t.Fatal("handler ran despite request drop")
	}
	if st := w.fb.Stats("cli", "srv"); st.DroppedRequests != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDropReplyRunsHandlerButFailsCaller(t *testing.T) {
	w := newWorld(t, 1)
	w.fb.SetLink("cli", "srv", Faults{DropReply: 1})
	if _, err := w.cli.Call("srv", 1); !errors.Is(err, bus.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if w.handled.Load() != 1 {
		t.Fatalf("handled = %d, want 1 (handler must run before reply drop)", w.handled.Load())
	}
	if st := w.fb.Stats("cli", "srv"); st.DroppedReplies != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDuplicateDeliversTwice(t *testing.T) {
	w := newWorld(t, 1)
	w.fb.SetLink("cli", "srv", Faults{Duplicate: 1})
	resp, err := w.cli.Call("srv", 42)
	if err != nil || resp != 42 {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	if w.handled.Load() != 2 {
		t.Fatalf("handled = %d, want 2", w.handled.Load())
	}
	if st := w.fb.Stats("cli", "srv"); st.Duplicates != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLatencyInjection(t *testing.T) {
	w := newWorld(t, 1)
	w.fb.SetLink("cli", "srv", Faults{LatencyMin: 2 * time.Millisecond, LatencyMax: 4 * time.Millisecond})
	start := time.Now()
	if _, err := w.cli.Call("srv", 1); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 2*time.Millisecond {
		t.Fatalf("call took %v, want >= 2ms", d)
	}
	if st := w.fb.Stats("cli", "srv"); st.Delayed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAsymmetricPartition(t *testing.T) {
	w := newWorld(t, 1)
	srv, err := w.fb.Listen("srv2", func(from bus.Address, msg any) (any, error) { return msg, nil })
	if err != nil {
		t.Fatal(err)
	}
	w.fb.Block("cli", "srv2")
	if _, err := w.cli.Call("srv2", 1); !errors.Is(err, bus.ErrUnreachable) {
		t.Fatalf("blocked direction err = %v", err)
	}
	// Reverse direction still works: the partition is asymmetric.
	if _, err := srv.Call("cli", 1); err != nil {
		t.Fatalf("reverse direction: %v", err)
	}
	w.fb.Unblock("cli", "srv2")
	if _, err := w.cli.Call("srv2", 1); err != nil {
		t.Fatalf("after unblock: %v", err)
	}
	if st := w.fb.Stats("cli", "srv2"); st.Blocked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPartitionGroups(t *testing.T) {
	w := newWorld(t, 1)
	w.fb.Partition([]bus.Address{"cli"}, []bus.Address{"srv"})
	if _, err := w.cli.Call("srv", 1); !errors.Is(err, bus.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	w.fb.Heal()
	if _, err := w.cli.Call("srv", 1); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFlappingEndpoint(t *testing.T) {
	w := newWorld(t, 1)
	// toggle=1 flips the state on every observed call: down, up, down...
	w.fb.SetFlap("srv", 1)
	var failures, successes int
	for i := 0; i < 10; i++ {
		if _, err := w.cli.Call("srv", i); err != nil {
			if !errors.Is(err, bus.ErrUnreachable) {
				t.Fatalf("err = %v", err)
			}
			failures++
			if w.fb.Online("srv") {
				t.Fatal("Online(srv) true while flapped down")
			}
		} else {
			successes++
		}
	}
	if failures != 5 || successes != 5 {
		t.Fatalf("failures=%d successes=%d, want strict alternation", failures, successes)
	}
	if st := w.fb.Stats("cli", "srv"); st.FlapFailures != 5 {
		t.Fatalf("stats = %+v", st)
	}
	// Clearing the flap brings the endpoint back for good.
	w.fb.SetFlap("srv", 0)
	for i := 0; i < 4; i++ {
		if _, err := w.cli.Call("srv", i); err != nil {
			t.Fatalf("after flap cleared: %v", err)
		}
	}
}

// TestSeededReproducibility replays the same call sequence under the same
// seed and demands an identical fault schedule, and under a different seed
// expects a different one.
func TestSeededReproducibility(t *testing.T) {
	run := func(seed int64) (LinkStats, []bool) {
		w := newWorld(t, seed)
		w.fb.SetDefaults(Faults{DropRequest: 0.3, DropReply: 0.2, Duplicate: 0.2})
		outcomes := make([]bool, 0, 200)
		for i := 0; i < 200; i++ {
			_, err := w.cli.Call("srv", i)
			outcomes = append(outcomes, err == nil)
		}
		return w.fb.TotalStats(), outcomes
	}
	s1, o1 := run(42)
	s2, o2 := run(42)
	if s1 != s2 {
		t.Fatalf("same seed, different stats: %+v vs %+v", s1, s2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("same seed, outcome %d differs", i)
		}
	}
	if s1.Injected() == 0 {
		t.Fatal("no faults fired at these rates — schedule is vacuous")
	}
	s3, _ := run(43)
	if s1 == s3 {
		t.Fatal("different seeds produced identical schedules (suspicious)")
	}
}

// TestHealKeepsStats: healing stops injection but preserves the record of
// what was injected.
func TestHealKeepsStats(t *testing.T) {
	w := newWorld(t, 1)
	w.fb.SetLink("cli", "srv", Faults{DropRequest: 1})
	_, _ = w.cli.Call("srv", 1)
	w.fb.Heal()
	if _, err := w.cli.Call("srv", 2); err != nil {
		t.Fatalf("after heal: %v", err)
	}
	st := w.fb.Stats("cli", "srv")
	if st.DroppedRequests != 1 || st.Calls != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestOfflinePropagation: the decorator forwards presence to the inner
// Memory network and folds it into Online().
func TestOfflinePropagation(t *testing.T) {
	w := newWorld(t, 1)
	w.fb.SetOnline("srv", false)
	if w.fb.Online("srv") {
		t.Fatal("Online true after SetOnline(false)")
	}
	if _, err := w.cli.Call("srv", 1); !errors.Is(err, bus.ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	w.fb.SetOnline("srv", true)
	if _, err := w.cli.Call("srv", 1); err != nil {
		t.Fatal(err)
	}
}
