// Package faultbus decorates any bus.Network with reproducible fault
// injection: per-link message drops (request or reply side), added latency,
// duplicate delivery, asymmetric partitions, and flapping endpoints. Every
// probabilistic decision is drawn from one seeded *rand.Rand in a fixed
// order per call, so a chaos run whose driver issues calls in a
// deterministic sequence replays the exact fault schedule from its seed.
//
// Faults are injected on the caller side, before and after the inner
// Call — the decorator never inspects payloads and works over Memory and
// tcpbus alike. Per-link counters record every injected fault so tests can
// assert that a chaos schedule actually exercised the paths it claims to.
package faultbus

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"whopay/internal/bus"
)

// Faults are the per-link fault probabilities (each in [0,1]) plus an added
// latency range. The zero value injects nothing.
type Faults struct {
	// DropRequest is the probability a request is lost before delivery:
	// the handler never runs and the caller sees ErrUnreachable.
	DropRequest float64
	// DropReply is the probability the reply is lost after the handler
	// ran: remote state may have changed, but the caller sees
	// ErrUnreachable — the fault that flushes out non-idempotent
	// protocol steps when combined with retries.
	DropReply float64
	// Duplicate is the probability the request is delivered twice (the
	// first response is discarded), modelling transport-level retransmit.
	Duplicate float64
	// LatencyMin/LatencyMax bound a uniform added delay per delivered
	// call (zero max disables).
	LatencyMin, LatencyMax time.Duration
}

// active reports whether any fault can fire.
func (f Faults) active() bool {
	return f.DropRequest > 0 || f.DropReply > 0 || f.Duplicate > 0 || f.LatencyMax > 0
}

// LinkStats counts traffic and injected faults on one directed link (or,
// via TotalStats, the whole network).
type LinkStats struct {
	Calls           int64 // Call invocations observed (before faulting)
	DroppedRequests int64
	DroppedReplies  int64
	Duplicates      int64
	Delayed         int64
	Blocked         int64 // calls refused by a partition
	FlapFailures    int64 // calls refused because the destination flapped down
}

// add accumulates other into s.
func (s *LinkStats) add(o LinkStats) {
	s.Calls += o.Calls
	s.DroppedRequests += o.DroppedRequests
	s.DroppedReplies += o.DroppedReplies
	s.Duplicates += o.Duplicates
	s.Delayed += o.Delayed
	s.Blocked += o.Blocked
	s.FlapFailures += o.FlapFailures
}

// Injected sums every injected fault (everything except Calls/Delayed
// bookkeeping — delays count too, they perturb timing).
func (s LinkStats) Injected() int64 {
	return s.DroppedRequests + s.DroppedReplies + s.Duplicates + s.Delayed + s.Blocked + s.FlapFailures
}

// link is a directed caller→destination pair.
type link struct{ from, to bus.Address }

// flapState tracks one flapping endpoint: each call observing the endpoint
// toggles its up/down state with probability toggle.
type flapState struct {
	toggle float64
	down   bool
}

// Network is the fault-injecting decorator. Configure faults, then Listen
// endpoints through it; all their outbound calls pass through the injector.
// Safe for concurrent use; determinism additionally requires the caller to
// issue calls in a deterministic order (single-threaded chaos drivers).
type Network struct {
	inner bus.Network

	mu       sync.Mutex
	rng      *rand.Rand
	defaults Faults
	links    map[link]*Faults
	blocked  map[link]bool
	flaps    map[bus.Address]*flapState
	stats    map[link]*LinkStats
}

var _ bus.Network = (*Network)(nil)

// New wraps inner with a fault injector driven by the given seed. A fresh
// Network injects nothing until faults are configured.
func New(inner bus.Network, seed int64) *Network {
	return &Network{
		inner:   inner,
		rng:     rand.New(rand.NewSource(seed)),
		links:   make(map[link]*Faults),
		blocked: make(map[link]bool),
		flaps:   make(map[bus.Address]*flapState),
		stats:   make(map[link]*LinkStats),
	}
}

// SetDefaults installs the fault profile applied to every link without a
// per-link override.
func (n *Network) SetDefaults(f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaults = f
}

// SetLink overrides the fault profile for the directed link from→to.
func (n *Network) SetLink(from, to bus.Address, f Faults) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[link{from, to}] = &f
}

// ClearLink removes a per-link override (the link reverts to defaults).
func (n *Network) ClearLink(from, to bus.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.links, link{from, to})
}

// Block partitions the directed link from→to: calls fail with
// ErrUnreachable. Asymmetric by construction — block only one direction to
// model one-way reachability.
func (n *Network) Block(from, to bus.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.blocked[link{from, to}] = true
}

// Unblock lifts a Block.
func (n *Network) Unblock(from, to bus.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.blocked, link{from, to})
}

// Partition blocks every link between the two groups, both directions —
// a full bipartition. Use Block directly for asymmetric cuts.
func (n *Network) Partition(a, b []bus.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			n.blocked[link{x, y}] = true
			n.blocked[link{y, x}] = true
		}
	}
}

// Unpartition lifts a Partition: every link between the two groups is
// unblocked again, both directions. Only blocks are cleared — latency and
// drop schedules configured on the links survive.
func (n *Network) Unpartition(a, b []bus.Address) {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			delete(n.blocked, link{x, y})
			delete(n.blocked, link{y, x})
		}
	}
}

// SetFlap makes addr a flapping endpoint: every call destined to it first
// toggles the endpoint's up/down state with probability toggle; calls
// finding it down fail with ErrUnreachable. A toggle of 0 removes the flap
// (the endpoint comes back up).
func (n *Network) SetFlap(addr bus.Address, toggle float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if toggle <= 0 {
		delete(n.flaps, addr)
		return
	}
	n.flaps[addr] = &flapState{toggle: toggle}
}

// Heal clears every configured fault — defaults, link overrides, blocks and
// flaps — leaving the statistics intact. The network behaves exactly like
// the inner one afterwards.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defaults = Faults{}
	n.links = make(map[link]*Faults)
	n.blocked = make(map[link]bool)
	n.flaps = make(map[bus.Address]*flapState)
}

// Stats returns the counters for the directed link from→to.
func (n *Network) Stats(from, to bus.Address) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s := n.stats[link{from, to}]; s != nil {
		return *s
	}
	return LinkStats{}
}

// TotalStats aggregates every link's counters.
func (n *Network) TotalStats() LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total LinkStats
	for _, s := range n.stats {
		total.add(*s)
	}
	return total
}

// Online reports endpoint availability, combining the inner network's
// prober (when it has one) with this decorator's flap state. It satisfies
// core's Prober interface so payment policies observe injected downtime.
func (n *Network) Online(addr bus.Address) bool {
	n.mu.Lock()
	if f := n.flaps[addr]; f != nil && f.down {
		n.mu.Unlock()
		return false
	}
	n.mu.Unlock()
	if p, ok := n.inner.(interface{ Online(bus.Address) bool }); ok {
		return p.Online(addr)
	}
	return true
}

// SetOnline forwards presence changes to the inner network (core's
// Presence interface), so peers' GoOffline/GoOnline keep working through
// the decorator.
func (n *Network) SetOnline(addr bus.Address, online bool) {
	if p, ok := n.inner.(interface {
		SetOnline(bus.Address, bool)
	}); ok {
		p.SetOnline(addr, online)
	}
}

// Listen implements bus.Network.
func (n *Network) Listen(addr bus.Address, h bus.Handler) (bus.Endpoint, error) {
	inner, err := n.inner.Listen(addr, h)
	if err != nil {
		return nil, err
	}
	return &endpoint{net: n, inner: inner}, nil
}

// plan is one call's fault decisions, drawn under the network lock in a
// fixed order so schedules replay from the seed.
type plan struct {
	blocked     bool
	flapped     bool
	delay       time.Duration
	dropRequest bool
	duplicate   bool
	dropReply   bool
}

// plan draws the fault decisions for one call on from→to and updates the
// counters for immediately-known outcomes (blocked/flapped/drops are
// recorded here; nothing else observes them).
func (n *Network) plan(from, to bus.Address) plan {
	n.mu.Lock()
	defer n.mu.Unlock()
	st := n.stats[link{from, to}]
	if st == nil {
		st = &LinkStats{}
		n.stats[link{from, to}] = st
	}
	st.Calls++

	var p plan
	// Decision order is fixed: flap toggle, partition, faults. Each draw
	// happens iff its fault is configured, so a given configuration
	// consumes randomness identically across runs.
	if f := n.flaps[to]; f != nil {
		if n.rng.Float64() < f.toggle {
			f.down = !f.down
		}
		if f.down {
			p.flapped = true
			st.FlapFailures++
			return p
		}
	}
	if n.blocked[link{from, to}] {
		p.blocked = true
		st.Blocked++
		return p
	}
	f := n.defaults
	if o := n.links[link{from, to}]; o != nil {
		f = *o
	}
	if !f.active() {
		return p
	}
	if f.DropRequest > 0 && n.rng.Float64() < f.DropRequest {
		p.dropRequest = true
		st.DroppedRequests++
		return p
	}
	if f.LatencyMax > 0 {
		span := f.LatencyMax - f.LatencyMin
		p.delay = f.LatencyMin
		if span > 0 {
			p.delay += time.Duration(n.rng.Int63n(int64(span)))
		}
		if p.delay > 0 {
			st.Delayed++
		}
	}
	if f.Duplicate > 0 && n.rng.Float64() < f.Duplicate {
		p.duplicate = true
		st.Duplicates++
	}
	if f.DropReply > 0 && n.rng.Float64() < f.DropReply {
		p.dropReply = true
		st.DroppedReplies++
	}
	return p
}

type endpoint struct {
	net   *Network
	inner bus.Endpoint
}

var _ bus.Endpoint = (*endpoint)(nil)

// Addr implements bus.Endpoint.
func (e *endpoint) Addr() bus.Address { return e.inner.Addr() }

// Close implements bus.Endpoint.
func (e *endpoint) Close() error { return e.inner.Close() }

// Call implements bus.Endpoint, applying the planned faults around the
// inner call.
func (e *endpoint) Call(to bus.Address, msg any) (any, error) {
	from := e.inner.Addr()
	p := e.net.plan(from, to)
	switch {
	case p.flapped:
		return nil, fmt.Errorf("%w: %s: endpoint flapped down", bus.ErrUnreachable, to)
	case p.blocked:
		return nil, fmt.Errorf("%w: %s: partitioned", bus.ErrUnreachable, to)
	case p.dropRequest:
		return nil, fmt.Errorf("%w: %s: request dropped", bus.ErrUnreachable, to)
	}
	if p.delay > 0 {
		time.Sleep(p.delay)
	}
	if p.duplicate {
		// First delivery's response is discarded: the handler runs
		// twice, as a retransmitting transport would make it.
		_, _ = e.inner.Call(to, msg)
	}
	resp, err := e.inner.Call(to, msg)
	if p.dropReply {
		// The handler ran (state may have changed); the caller only
		// learns the transport gave up.
		return nil, fmt.Errorf("%w: %s: reply dropped", bus.ErrUnreachable, to)
	}
	return resp, err
}
