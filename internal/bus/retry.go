package bus

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Retry defaults. Production daemons keep them; tests and the chaos suite
// shrink the delays via the policy fields.
const (
	DefaultRetryAttempts = 4
	DefaultRetryBase     = 25 * time.Millisecond
	DefaultRetryMax      = 2 * time.Second
	DefaultRetryFactor   = 2.0
	DefaultRetryJitter   = 0.5
	DefaultMaxRedirects  = 3
)

// RetryPolicy configures a RetryCaller: capped exponential backoff with
// jitter. The zero value means "use every default"; any field left zero
// takes its default. Retries apply only to transient transport failures
// (see Transient) — protocol rejections are never replayed, so a retrying
// caller behaves identically to a plain one whenever the network behaves.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each further retry
	// multiplies it by Factor, capped at MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	Factor    float64
	// Jitter is the fraction of each delay randomized away: the actual
	// wait is delay * (1 - Jitter + Jitter*u) for uniform u in [0,1).
	Jitter float64
	// Rand, when set, makes jitter deterministic (the chaos suite injects
	// a seeded source). Defaults to the global math/rand source.
	Rand *rand.Rand
	// Sleep is the wait primitive, injectable for tests. Defaults to
	// time.Sleep.
	Sleep func(time.Duration)
	// MaxRedirects bounds how many redirect hops one Call follows when a
	// handler rejects with a registered redirect code (RegisterRedirectCode)
	// carrying a hint address. Hops are immediate — no backoff — and do not
	// consume retry attempts. Default DefaultMaxRedirects; negative disables
	// redirect following.
	MaxRedirects int
}

// withDefaults fills zero fields.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultRetryBase
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultRetryMax
	}
	if p.Factor < 1 {
		p.Factor = DefaultRetryFactor
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = DefaultRetryJitter
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	if p.MaxRedirects == 0 {
		p.MaxRedirects = DefaultMaxRedirects
	}
	return p
}

// timeouter matches net.Error (and context deadline errors wrapped by
// transports) without importing net.
type timeouter interface{ Timeout() bool }

// Transient reports whether err is a transport failure worth retrying: the
// destination was unreachable or the call timed out, and the request may
// never have been processed. Protocol rejections (*RemoteError) are final —
// the handler ran and said no — and ErrClosed means this endpoint is gone;
// neither is retried, even when the remote error's cause chain contains a
// relayed transport failure (the relay hop did run).
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var remote *RemoteError
	if errors.As(err, &remote) {
		return false
	}
	if errors.Is(err, ErrClosed) {
		return false
	}
	if errors.Is(err, ErrUnreachable) {
		return true
	}
	var to timeouter
	return errors.As(err, &to) && to.Timeout()
}

// RetryCaller decorates a Caller with the policy's backoff loop. Safe for
// concurrent use.
type RetryCaller struct {
	inner  Caller
	policy RetryPolicy

	randMu sync.Mutex

	attempts  atomic.Int64 // calls issued, including retries
	retries   atomic.Int64 // retries alone
	redirects atomic.Int64 // redirect hops followed
}

// NewRetryCaller wraps inner with retry-on-transient-failure semantics.
func NewRetryCaller(inner Caller, policy RetryPolicy) *RetryCaller {
	return &RetryCaller{inner: inner, policy: policy.withDefaults()}
}

// Attempts returns the total number of calls issued (first tries plus
// retries).
func (r *RetryCaller) Attempts() int64 { return r.attempts.Load() }

// Retries returns how many retries have been issued.
func (r *RetryCaller) Retries() int64 { return r.retries.Load() }

// Redirects returns how many redirect hops have been followed.
func (r *RetryCaller) Redirects() int64 { return r.redirects.Load() }

// Call implements Caller: it forwards to the inner caller, retrying
// transient transport failures under capped exponential backoff with
// jitter. Rejections carrying a registered redirect code are re-issued to
// the hinted address immediately (bounded by MaxRedirects); a redirectable
// rejection without a hint is retried with backoff like a transient failure
// — the cluster may be mid-failover and a moment away from electing the
// destination. The last error is returned when every attempt fails.
func (r *RetryCaller) Call(to Address, msg any) (any, error) {
	target := to
	delay := r.policy.BaseDelay
	hops := 0
	var lastErr error
	for attempt := 0; attempt < r.policy.MaxAttempts; {
		r.attempts.Add(1)
		resp, err := r.inner.Call(target, msg)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if Redirectable(err) {
			if hint, ok := RedirectHint(err); ok && hint != target && hops < r.policy.MaxRedirects {
				hops++
				r.redirects.Add(1)
				target = hint
				continue
			}
			// Hintless (or exhausted) redirect: fall through to backoff —
			// unlike other protocol rejections this one is expected to
			// resolve as leadership settles.
		} else if !Transient(err) {
			return nil, err
		}
		attempt++
		if attempt >= r.policy.MaxAttempts {
			break
		}
		r.retries.Add(1)
		r.policy.Sleep(r.jittered(delay))
		delay = time.Duration(float64(delay) * r.policy.Factor)
		if delay > r.policy.MaxDelay {
			delay = r.policy.MaxDelay
		}
	}
	return nil, lastErr
}

// jittered randomizes a delay per the policy's jitter fraction.
func (r *RetryCaller) jittered(d time.Duration) time.Duration {
	if r.policy.Jitter == 0 || d <= 0 {
		return d
	}
	var u float64
	if r.policy.Rand != nil {
		r.randMu.Lock()
		u = r.policy.Rand.Float64()
		r.randMu.Unlock()
	} else {
		u = rand.Float64()
	}
	return time.Duration(float64(d) * (1 - r.policy.Jitter + r.policy.Jitter*u))
}
