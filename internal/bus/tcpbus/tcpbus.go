// Package tcpbus implements bus.Network over real TCP sockets. It powers
// the networked daemons (cmd/whopayd): every WhoPay protocol message that
// flows over the in-memory bus in tests and simulations flows over TCP
// here, unchanged.
//
// Addresses are "host:port" strings. Calls multiplex over one persistent
// connection per destination: each request carries a 64-bit request ID in a
// length-prefixed binary frame (internal/wire, PROTOCOL.md "Wire format"),
// so concurrent calls pipeline on the same socket instead of paying a dial
// and a gob type-descriptor exchange each. A flusher goroutine coalesces
// back-to-back frames into one write; idle connections are reaped; a dead
// connection is redialed on the next call.
//
// gob remains the negotiated fallback for mixed-version interop. A framed
// connection opens with wire.Preamble, whose leading zero byte can never
// begin a gob stream, so a listener serves old one-call-per-connection gob
// peers and new framed peers on the same port. A caller that finds its
// framed opening rejected by an old server falls back to one-shot gob for
// that destination. Payload types without a registered wire codec ride
// individual frames gob-encoded (FlagGob).
//
// Message payload types must be registered with RegisterType before use;
// the core package registers all protocol messages (and their binary
// codecs) in RegisterWireTypes.
package tcpbus

import (
	"bufio"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/bus"
	"whopay/internal/obs"
	"whopay/internal/wire"
)

// Registered gob names, kept to reject divergent re-registration with a
// clear message (gob's own panic names neither the transport nor the fix).
var (
	regTypeMu    sync.Mutex
	regTypeNames = map[string]reflect.Type{}
)

// gobName mirrors gob.Register's default-name derivation so the conflict
// check below sees exactly the name gob will transmit.
func gobName(rt reflect.Type) string {
	name := rt.String()
	star := ""
	if rt.Kind() == reflect.Pointer {
		star = "*"
		rt = rt.Elem()
	}
	if rt.Name() != "" {
		if rt.PkgPath() != "" {
			name = star + rt.PkgPath() + "." + rt.Name()
		} else {
			name = star + rt.Name()
		}
	}
	return name
}

// RegisterType registers a payload type for gob transport (the fallback
// wire format). Call it once per concrete message type (typically from an
// init function). Registering the same type again is a no-op; registering a
// different type under an already-taken wire name panics — a silent rebind
// would make two nodes disagree on what the name means on the wire.
func RegisterType(v any) {
	t := reflect.TypeOf(v)
	name := gobName(t)
	regTypeMu.Lock()
	if prev, ok := regTypeNames[name]; ok && prev != t {
		regTypeMu.Unlock()
		panic(fmt.Sprintf(
			"tcpbus: RegisterType: wire name %q is already registered for %v and cannot be rebound to %v; wire names must map to exactly one concrete type",
			name, prev, t))
	}
	regTypeNames[name] = t
	regTypeMu.Unlock()
	gob.Register(v)
}

// envelope frames a request on the legacy gob wire. TraceID/SpanID are the
// optional obs trace identity (PROTOCOL.md): empty when the caller is
// untraced, in which case gob omits the zero-valued fields entirely, so the
// wire bytes are identical to pre-obs builds; decoders that predate the
// fields skip them, so the extension is backward compatible in both
// directions.
type envelope struct {
	From    bus.Address
	Payload any
	TraceID string
	SpanID  string
}

// reply frames a response on the legacy gob wire. Code carries the
// machine-readable sentinel code registered with bus.RegisterErrorCode, so
// errors.Is on protocol sentinels (core.ErrCoinBusy, core.ErrUnknownCoin,
// ...) keeps working across the TCP hop — a plain string cannot feed
// errors.Is, and the retry layer needs the distinction to never replay
// protocol rejections.
type reply struct {
	Payload any
	Err     string
	Code    string
	IsErr   bool
}

// Network is a TCP-backed bus.Network. The zero value is not usable; use
// New.
type Network struct {
	dialTimeout  time.Duration
	callTimeout  time.Duration
	idleTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	gobWire      bool
	reg          *obs.Registry

	// obs handles; nil (no-op) unless WithObs is given.
	mConnsIn    *obs.Gauge
	mConnsOut   *obs.Gauge
	mCalls      *obs.Counter
	mDials      *obs.Counter
	mDialErrs   *obs.Counter
	mReconnects *obs.Counter
	mTimeouts   *obs.Counter
	mFramesTx   *obs.Counter
	mFramesRx   *obs.Counter
	mBytesTx    *obs.Counter
	mBytesRx    *obs.Counter
}

var _ bus.Network = (*Network)(nil)

// Option configures a Network.
type Option func(*Network)

// WithDialTimeout sets the TCP dial timeout (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(n *Network) { n.dialTimeout = d }
}

// WithCallTimeout sets the caller's budget for the whole exchange — it
// bounds the wait for the reply, which includes the remote handler's
// execution time (default 30s).
func WithCallTimeout(d time.Duration) Option {
	return func(n *Network) { n.callTimeout = d }
}

// WithIdleTimeout bounds how long an accepted connection may take to
// deliver its complete request (default 10s). A peer that connects and
// then goes silent — or trickles bytes — is cut off at this deadline, so
// hung or malicious clients cannot pin server goroutines and file
// descriptors indefinitely. It also sets the pooled-connection idle
// lifetime: an outbound connection with no calls for this long is reaped.
func WithIdleTimeout(d time.Duration) Option {
	return func(n *Network) { n.idleTimeout = d }
}

// WithReadTimeout bounds the caller-side wait for the reply once the
// request is sent, when smaller than the call timeout (default: the call
// timeout).
func WithReadTimeout(d time.Duration) Option {
	return func(n *Network) { n.readTimeout = d }
}

// WithWriteTimeout bounds each side's write of its message (default 10s).
// A peer that stops draining its receive buffer stalls our write; this
// deadline frees the goroutine instead of wedging on it.
func WithWriteTimeout(d time.Duration) Option {
	return func(n *Network) { n.writeTimeout = d }
}

// WithGobWire forces the legacy wire format: one gob-encoded call per
// short-lived connection, exactly as nodes before the framed protocol
// spoke. Listeners still sniff and serve framed peers. The option exists
// for interop tests and for benchmarking the framed transport against the
// gob baseline.
func WithGobWire() Option {
	return func(n *Network) { n.gobWire = true }
}

// WithObs enables transport metrics on reg: open inbound and outbound
// connections, calls, dials, dial failures, reconnects, deadline timeouts,
// and frame/byte throughput. It also activates trace propagation —
// outgoing requests carry the caller's ambient trace identity. Nil reg
// (the default) leaves the transport uninstrumented and the wire format
// byte-identical.
func WithObs(reg *obs.Registry) Option {
	return func(n *Network) { n.reg = reg }
}

// New returns a TCP Network.
func New(opts ...Option) *Network {
	n := &Network{
		dialTimeout:  5 * time.Second,
		callTimeout:  30 * time.Second,
		idleTimeout:  10 * time.Second,
		writeTimeout: 10 * time.Second,
	}
	for _, o := range opts {
		o(n)
	}
	if n.readTimeout == 0 || n.readTimeout > n.callTimeout {
		n.readTimeout = n.callTimeout
	}
	if n.reg != nil {
		n.reg.Help("whopay_tcpbus_open_conns", "Accepted connections currently being served.")
		n.reg.Help("whopay_tcpbus_outbound_conns", "Pooled outbound connections currently open.")
		n.reg.Help("whopay_tcpbus_calls_total", "Outbound calls attempted.")
		n.reg.Help("whopay_tcpbus_dials_total", "Outbound dials attempted.")
		n.reg.Help("whopay_tcpbus_dial_errors_total", "Outbound dials that failed.")
		n.reg.Help("whopay_tcpbus_reconnects_total", "Dials that replaced a previously live pooled connection.")
		n.reg.Help("whopay_tcpbus_timeouts_total", "Calls that hit a read/write deadline.")
		n.reg.Help("whopay_tcpbus_frames_tx_total", "Wire frames sent.")
		n.reg.Help("whopay_tcpbus_frames_rx_total", "Wire frames received.")
		n.reg.Help("whopay_tcpbus_bytes_tx_total", "Wire frame bytes sent (including length prefixes).")
		n.reg.Help("whopay_tcpbus_bytes_rx_total", "Wire frame bytes received (including length prefixes).")
		n.mConnsIn = n.reg.Gauge("whopay_tcpbus_open_conns", nil)
		n.mConnsOut = n.reg.Gauge("whopay_tcpbus_outbound_conns", nil)
		n.mCalls = n.reg.Counter("whopay_tcpbus_calls_total", nil)
		n.mDials = n.reg.Counter("whopay_tcpbus_dials_total", nil)
		n.mDialErrs = n.reg.Counter("whopay_tcpbus_dial_errors_total", nil)
		n.mReconnects = n.reg.Counter("whopay_tcpbus_reconnects_total", nil)
		n.mTimeouts = n.reg.Counter("whopay_tcpbus_timeouts_total", nil)
		n.mFramesTx = n.reg.Counter("whopay_tcpbus_frames_tx_total", nil)
		n.mFramesRx = n.reg.Counter("whopay_tcpbus_frames_rx_total", nil)
		n.mBytesTx = n.reg.Counter("whopay_tcpbus_bytes_tx_total", nil)
		n.mBytesRx = n.reg.Counter("whopay_tcpbus_bytes_rx_total", nil)
	}
	return n
}

// countTimeout bumps the timeout counter when err is a deadline expiry.
func (n *Network) countTimeout(err error) {
	if n.mTimeouts == nil {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		n.mTimeouts.Inc()
	}
}

// timeoutError is the synthetic error for a call that outlived its reply
// budget on a multiplexed connection (no socket deadline fires for one
// call among many). It satisfies net.Error so the retry layer and the load
// driver classify it exactly like a socket deadline expiry.
type timeoutError struct{ d time.Duration }

func (e *timeoutError) Error() string   { return fmt.Sprintf("call timed out after %v", e.d) }
func (e *timeoutError) Timeout() bool   { return true }
func (e *timeoutError) Temporary() bool { return true }

// connFailedError marks errors delivered to in-flight calls because their
// connection died (read/write failure, reap, endpoint close) — the signal
// Call uses to distinguish "the pipe broke" from a remote rejection when
// deciding whether a peer might be a legacy gob node.
type connFailedError struct{ err error }

func (e *connFailedError) Error() string { return e.err.Error() }
func (e *connFailedError) Unwrap() error { return e.err }

// Is reports a died connection as ErrUnreachable: the pipe to the
// destination is gone and the next attempt redials — the same transient
// condition as a failed dial, and exactly what a caller riding a broker
// failover needs to keep retrying toward the promoted leader.
func (e *connFailedError) Is(target error) bool { return target == bus.ErrUnreachable }

// Listen implements bus.Network: it binds a TCP listener on addr and serves
// requests with h until the endpoint is closed. Pass ":0" style addresses
// to pick a free port; Endpoint.Addr reports the bound address.
func (n *Network) Listen(addr bus.Address, h bus.Handler) (bus.Endpoint, error) {
	if h == nil {
		return nil, errors.New("tcpbus: nil handler")
	}
	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return nil, fmt.Errorf("tcpbus: listen %s: %w", addr, err)
	}
	ep := &endpoint{
		net:     n,
		ln:      ln,
		addr:    bus.Address(ln.Addr().String()),
		handler: h,
		done:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
		pool:    make(map[bus.Address]*connSlot),
		legacy:  make(map[bus.Address]bool),
		framed:  make(map[bus.Address]bool),
	}
	ep.wg.Add(2)
	go ep.serve()
	go ep.reap()
	return ep, nil
}

type endpoint struct {
	net     *Network
	ln      net.Listener
	addr    bus.Address
	handler bus.Handler

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
	conns  map[net.Conn]struct{}

	poolMu sync.Mutex
	pool   map[bus.Address]*connSlot

	// Wire-format memory per destination: framed records peers that have
	// answered in frames (never downgraded afterwards); legacy records peers
	// whose framed opening failed and who are spoken to in one-shot gob.
	negMu  sync.RWMutex
	legacy map[bus.Address]bool
	framed map[bus.Address]bool
}

// track registers a connection so Close can sever it; it reports false
// (and closes the conn) when the endpoint is already shutting down. extra
// goroutines are added to the endpoint's wait group inside the same
// critical section, so a successful track's Add is ordered before Close's
// Wait.
func (e *endpoint) track(conn net.Conn, goroutines int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		conn.Close()
		return false
	}
	e.conns[conn] = struct{}{}
	if goroutines > 0 {
		e.wg.Add(goroutines)
	}
	return true
}

func (e *endpoint) untrack(conn net.Conn) {
	e.mu.Lock()
	delete(e.conns, conn)
	e.mu.Unlock()
}

var _ bus.Endpoint = (*endpoint)(nil)

// Addr implements bus.Endpoint.
func (e *endpoint) Addr() bus.Address { return e.addr }

func (e *endpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

func (e *endpoint) markLegacy(to bus.Address) {
	e.negMu.Lock()
	e.legacy[to] = true
	e.negMu.Unlock()
}

func (e *endpoint) isLegacy(to bus.Address) bool {
	e.negMu.RLock()
	defer e.negMu.RUnlock()
	return e.legacy[to]
}

func (e *endpoint) markFramed(to bus.Address) {
	e.negMu.Lock()
	e.framed[to] = true
	e.negMu.Unlock()
}

func (e *endpoint) isFramed(to bus.Address) bool {
	e.negMu.RLock()
	defer e.negMu.RUnlock()
	return e.framed[to]
}

// Accept-failure backoff bounds: a persistent error (fd exhaustion, a
// half-dead listener) must not spin the accept loop at 100% CPU.
const (
	acceptBackoffMin = time.Millisecond
	acceptBackoffMax = 100 * time.Millisecond
)

func (e *endpoint) serve() {
	defer e.wg.Done()
	var backoff time.Duration
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			// Transient accept failure; back off exponentially so a
			// persistent error cannot spin the loop, and stay
			// responsive to Close while sleeping.
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-e.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
		}()
	}
}

// reap closes pooled outbound connections that have sat idle (no calls in
// flight, none recently) past the idle timeout, returning their file
// descriptors instead of pinning one per peer forever. The next call to
// that peer redials.
func (e *endpoint) reap() {
	defer e.wg.Done()
	interval := e.net.idleTimeout / 2
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-e.done:
			return
		case <-t.C:
			e.poolMu.Lock()
			slots := make([]*connSlot, 0, len(e.pool))
			for _, s := range e.pool {
				slots = append(slots, s)
			}
			e.poolMu.Unlock()
			cutoff := time.Now().Add(-e.net.idleTimeout).UnixNano()
			for _, s := range slots {
				s.mu.Lock()
				pc := s.pc
				s.mu.Unlock()
				if pc != nil && pc.idleSince(cutoff) {
					pc.fail(errConnIdle)
				}
			}
		}
	}
}

var errConnIdle = errors.New("tcpbus: connection reaped while idle")

// serveConn sniffs the first byte to pick the wire format: framed
// connections open with wire.Preamble, whose leading zero can never begin
// a gob stream (gob's first byte is a non-zero message byte count), so one
// port serves both protocol generations.
func (e *endpoint) serveConn(conn net.Conn) {
	if !e.track(conn, 0) {
		return
	}
	defer e.untrack(conn)
	defer conn.Close()
	e.net.mConnsIn.Add(1)
	defer e.net.mConnsIn.Add(-1)
	// The idle deadline covers the sniff and, on the legacy path, the whole
	// request: a client that connects and goes silent, or trickles one byte
	// at a time, is cut off here instead of pinning this goroutine for the
	// full call timeout.
	_ = conn.SetReadDeadline(time.Now().Add(e.net.idleTimeout))
	br := bufio.NewReader(conn)
	first, err := br.Peek(1)
	if err != nil {
		return
	}
	if first[0] != wire.Preamble[0] {
		e.serveGobConn(conn, br)
		return
	}
	var pre [len(wire.Preamble)]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil || pre != wire.Preamble {
		return
	}
	e.serveFramedConn(conn, br)
}

// serveGobConn serves one legacy call: decode a gob envelope, run the
// handler, encode a gob reply, close. Exactly the pre-framing protocol.
func (e *endpoint) serveGobConn(conn net.Conn, br *bufio.Reader) {
	dec := gob.NewDecoder(br)
	enc := gob.NewEncoder(conn)
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return
	}
	if env.TraceID != "" {
		// The handler serves this request start-to-finish on this
		// goroutine, so adopting the caller's trace identity here makes
		// every span the entity opens while handling it a child of the
		// remote caller's span.
		release := obs.Adopt(env.TraceID, env.SpanID)
		defer release()
	}
	resp, err := e.handler(env.From, env.Payload)
	out := reply{Payload: resp}
	if err != nil {
		out = reply{Err: err.Error(), Code: bus.ErrorCode(err), IsErr: true}
	}
	// The write deadline starts after the handler: a client that stops
	// draining its receive buffer cannot wedge the reply.
	_ = conn.SetWriteDeadline(time.Now().Add(e.net.writeTimeout))
	_ = enc.Encode(&out)
}

// serveFramedConn serves a multiplexed framed connection: requests are read
// and decoded in order on this goroutine (reusing one frame buffer), each
// handler runs on its own goroutine, and replies flow through a coalescing
// writer as they finish — so a slow handler never blocks requests queued
// behind it (pipelining).
func (e *endpoint) serveFramedConn(conn net.Conn, br *bufio.Reader) {
	n := e.net
	w := newFrameWriter(conn, n)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.wg.Add(1)
	e.mu.Unlock()
	go func() {
		defer e.wg.Done()
		w.loop()
	}()
	defer w.close()
	// Between frames a pooled client connection legitimately sits idle, so
	// the inter-frame deadline is a multiple of the single-request idle
	// budget (clients reap their side at 1x, so they normally hang up
	// first). Once a frame's length arrives its body must land within the
	// idle timeout — the trickler cutoff.
	interIdle := n.idleTimeout * 3
	var scratch []byte
	for {
		_ = conn.SetReadDeadline(time.Now().Add(interIdle))
		body, s2, err := wire.ReadFrame(br, scratch, func(int) {
			_ = conn.SetReadDeadline(time.Now().Add(n.idleTimeout))
		})
		scratch = s2
		if err != nil {
			return
		}
		f, err := wire.ParseFrame(body)
		if err != nil || f.Kind != wire.KindRequest {
			// Protocol violation: this peer cannot be trusted to keep
			// frame boundaries, so the connection dies.
			return
		}
		n.mFramesRx.Inc()
		n.mBytesRx.Add(int64(len(body)) + 4)
		// Decode synchronously: the payload aliases scratch, which the next
		// ReadFrame will overwrite. Decoded values copy out of it.
		payload, derr := decodeFramePayload(&f)
		reqID, from := f.ReqID, f.From
		traceID, spanID := f.TraceID, f.SpanID
		if derr != nil {
			// A frame with a bad payload is that caller's problem, not the
			// connection's: framing is intact, so reply with the error and
			// keep serving.
			w.enqueue(encodeReplyFrame(reqID, nil, fmt.Errorf("tcpbus: decoding request: %v", derr)))
			continue
		}
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			if traceID != "" {
				release := obs.Adopt(traceID, spanID)
				defer release()
			}
			resp, herr := e.handler(bus.Address(from), payload)
			w.enqueue(encodeReplyFrame(reqID, resp, herr))
		}()
	}
}

// decodeFramePayload turns a frame's payload bytes into the call payload:
// a registered codec by tag, a self-contained gob stream (FlagGob), or nil.
func decodeFramePayload(f *wire.Frame) (any, error) {
	switch {
	case f.Flags&wire.FlagGob != 0:
		return wire.DecodeGob(f.Payload)
	case f.Tag == 0:
		return nil, nil
	default:
		return wire.Decode(f.Tag, f.Payload)
	}
}

// appendPayloadFrame appends the frame for f carrying msg: registered types
// through their codec, everything else as an embedded gob stream. The
// returned slice extends dst (a pooled buffer on the hot path).
func appendPayloadFrame(dst []byte, f *wire.Frame, msg any) ([]byte, error) {
	if msg == nil {
		return wire.AppendFrame(dst, f, nil)
	}
	if e, ok := wire.ByValue(msg); ok {
		f.Tag = e.Tag
		return wire.AppendFrame(dst, f, func(b []byte) ([]byte, error) {
			return e.Enc(b, msg)
		})
	}
	gb, err := wire.EncodeGob(msg)
	if err != nil {
		return dst, err
	}
	f.Flags |= wire.FlagGob
	return wire.AppendFrame(dst, f, func(b []byte) ([]byte, error) {
		return append(b, gb...), nil
	})
}

// encodeReplyFrame builds the reply frame for reqID into a pooled buffer.
// Reply encoding failures degrade to an error reply so the caller is never
// left waiting for a frame that cannot be produced.
func encodeReplyFrame(reqID uint64, resp any, herr error) []byte {
	buf := wire.GetBuf()
	f := wire.Frame{Kind: wire.KindReply, ReqID: reqID}
	if herr != nil {
		f.Flags = wire.FlagError
		f.ErrMsg = herr.Error()
		f.ErrCode = bus.ErrorCode(herr)
		out, err := wire.AppendFrame(buf, &f, nil)
		if err == nil {
			return out
		}
		// An error reply can only fail by exceeding the frame size cap;
		// truncate the message and retry once.
		f.ErrMsg = "tcpbus: error message exceeded frame size"
		out, _ = wire.AppendFrame(buf, &f, nil)
		return out
	}
	out, err := appendPayloadFrame(buf, &f, resp)
	if err != nil {
		return encodeReplyFrameError(buf, reqID, fmt.Errorf("tcpbus: encoding reply: %v", err))
	}
	return out
}

func encodeReplyFrameError(buf []byte, reqID uint64, err error) []byte {
	f := wire.Frame{Kind: wire.KindReply, ReqID: reqID, Flags: wire.FlagError,
		ErrMsg: err.Error(), ErrCode: bus.ErrorCode(err)}
	out, _ := wire.AppendFrame(buf[:0], &f, nil)
	return out
}

// frameWriter is the coalescing flusher shared by both connection
// directions: producers enqueue encoded frames (pooled buffers, ownership
// transfers), one goroutine drains the queue in batches through a buffered
// writer with a single deadline and flush per batch, then returns the
// buffers to the pool. Back-to-back frames — pipelined requests, replies
// finishing together — ride one syscall.
type frameWriter struct {
	conn net.Conn
	net  *Network

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []queuedWrite
	closed bool

	onErr func(error) // invoked once, outside mu, when a write fails
}

// queuedWrite is one buffer awaiting the flusher; raw marks bytes that are
// not a frame (the connection preamble) so the frame counters stay honest.
type queuedWrite struct {
	b   []byte
	raw bool
}

func newFrameWriter(conn net.Conn, n *Network) *frameWriter {
	w := &frameWriter{conn: conn, net: n}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// enqueue hands buf to the writer. On a closed writer the buffer is
// returned to the pool and false is reported.
func (w *frameWriter) enqueue(buf []byte) bool { return w.push(buf, false) }

// enqueueRaw hands non-frame bytes (the preamble) to the writer.
func (w *frameWriter) enqueueRaw(buf []byte) bool { return w.push(buf, true) }

func (w *frameWriter) push(buf []byte, raw bool) bool {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		wire.PutBuf(buf)
		return false
	}
	w.queue = append(w.queue, queuedWrite{b: buf, raw: raw})
	w.cond.Signal()
	w.mu.Unlock()
	return true
}

// close stops the loop and frees queued frames.
func (w *frameWriter) close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	freed := w.queue
	w.queue = nil
	w.cond.Broadcast()
	w.mu.Unlock()
	for _, q := range freed {
		wire.PutBuf(q.b)
	}
}

func (w *frameWriter) loop() {
	bw := bufio.NewWriter(w.conn)
	for {
		w.mu.Lock()
		for len(w.queue) == 0 && !w.closed {
			w.cond.Wait()
		}
		if w.closed {
			w.mu.Unlock()
			return
		}
		batch := w.queue
		w.queue = nil
		w.mu.Unlock()
		_ = w.conn.SetWriteDeadline(time.Now().Add(w.net.writeTimeout))
		var werr error
		var nbytes, nframes int
		for _, q := range batch {
			if werr == nil {
				_, werr = bw.Write(q.b)
				nbytes += len(q.b)
				if !q.raw {
					nframes++
				}
			}
			wire.PutBuf(q.b)
		}
		if werr == nil {
			werr = bw.Flush()
		}
		if werr != nil {
			w.net.countTimeout(werr)
			w.close()
			if w.onErr != nil {
				w.onErr(werr)
			}
			return
		}
		w.net.mFramesTx.Add(int64(nframes))
		w.net.mBytesTx.Add(int64(nbytes))
	}
}

// callResult is one reply delivered to a waiting call.
type callResult struct {
	payload any
	err     error
}

// connSlot is the pool entry for one destination. Its mutex serializes
// dials, so a burst of calls to a cold peer produces one connection.
type connSlot struct {
	mu      sync.Mutex
	pc      *peerConn
	everHad bool // a connection existed before: the next dial is a reconnect
}

// peerConn is one live multiplexed connection to a destination: calls
// register a reply channel under a fresh request ID, frames go out through
// the coalescing writer, and a read loop routes reply frames back by ID.
type peerConn struct {
	ep   *endpoint
	addr bus.Address
	conn net.Conn
	w    *frameWriter

	nextID   atomic.Uint64
	gotReply atomic.Bool  // a framed reply arrived on this connection
	lastUsed atomic.Int64 // UnixNano of the most recent call activity

	mu      sync.Mutex
	err     error // set once when the connection dies
	pending map[uint64]chan callResult

	failOnce sync.Once
}

func newPeerConn(e *endpoint, addr bus.Address, conn net.Conn) *peerConn {
	pc := &peerConn{
		ep:      e,
		addr:    addr,
		conn:    conn,
		pending: make(map[uint64]chan callResult),
	}
	pc.w = newFrameWriter(conn, e.net)
	pc.w.onErr = func(err error) { pc.fail(fmt.Errorf("writing request: %w", err)) }
	pc.touch()
	return pc
}

func (pc *peerConn) touch() { pc.lastUsed.Store(time.Now().UnixNano()) }

func (pc *peerConn) alive() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.err == nil
}

// idleSince reports whether the connection has no calls in flight and no
// activity after the cutoff.
func (pc *peerConn) idleSince(cutoffNano int64) bool {
	pc.mu.Lock()
	inFlight := len(pc.pending)
	pc.mu.Unlock()
	return inFlight == 0 && pc.lastUsed.Load() < cutoffNano
}

// fail kills the connection once: marks it dead, severs the socket, stops
// the writer, fails every in-flight call, and clears the pool slot so the
// next call redials.
func (pc *peerConn) fail(err error) {
	pc.failOnce.Do(func() {
		wrapped := &connFailedError{err: err}
		pc.mu.Lock()
		pc.err = wrapped
		pending := pc.pending
		pc.pending = nil
		pc.mu.Unlock()
		pc.conn.Close()
		pc.w.close()
		for _, ch := range pending {
			ch <- callResult{err: wrapped}
		}
		pc.ep.clearSlot(pc.addr, pc)
		pc.ep.untrack(pc.conn)
		pc.ep.net.mConnsOut.Add(-1)
	})
}

func (e *endpoint) clearSlot(addr bus.Address, pc *peerConn) {
	e.poolMu.Lock()
	slot := e.pool[addr]
	e.poolMu.Unlock()
	if slot == nil {
		return
	}
	slot.mu.Lock()
	if slot.pc == pc {
		slot.pc = nil
	}
	slot.mu.Unlock()
}

// readLoop routes reply frames to their calls by request ID.
func (pc *peerConn) readLoop() {
	n := pc.ep.net
	br := bufio.NewReader(pc.conn)
	var scratch []byte
	for {
		body, s2, err := wire.ReadFrame(br, scratch, nil)
		scratch = s2
		if err != nil {
			pc.fail(fmt.Errorf("reading reply: %w", err))
			return
		}
		f, err := wire.ParseFrame(body)
		if err != nil || f.Kind != wire.KindReply {
			pc.fail(fmt.Errorf("reading reply: malformed frame: %v", err))
			return
		}
		n.mFramesRx.Inc()
		n.mBytesRx.Add(int64(len(body)) + 4)
		pc.gotReply.Store(true)
		pc.ep.markFramed(pc.addr)
		var res callResult
		if f.Flags&wire.FlagError != 0 {
			res.err = &bus.RemoteError{Msg: f.ErrMsg, Code: f.ErrCode}
		} else if res.payload, err = decodeFramePayload(&f); err != nil {
			res = callResult{err: err}
		}
		pc.mu.Lock()
		ch := pc.pending[f.ReqID]
		delete(pc.pending, f.ReqID)
		pc.mu.Unlock()
		if ch != nil {
			ch <- res
		}
		pc.touch()
	}
}

// roundTrip issues one call over the multiplexed connection.
func (pc *peerConn) roundTrip(msg any) (any, error) {
	n := pc.ep.net
	pc.touch()
	id := pc.nextID.Add(1)
	ch := make(chan callResult, 1)
	pc.mu.Lock()
	if pc.err != nil {
		err := pc.err
		pc.mu.Unlock()
		return nil, err
	}
	pc.pending[id] = ch
	pc.mu.Unlock()

	f := wire.Frame{Kind: wire.KindRequest, ReqID: id, From: string(pc.ep.addr)}
	if n.reg != nil {
		// Trace identity crosses the wire only on instrumented networks, so
		// uninstrumented daemons keep trace-free wire bytes even when some
		// other subsystem in the process activated tracing.
		if tid, sid := obs.Inject(); tid != "" {
			f.Flags |= wire.FlagTraced
			f.TraceID, f.SpanID = tid, sid
		}
	}
	buf, err := appendPayloadFrame(wire.GetBuf(), &f, msg)
	if err != nil {
		pc.dropPending(id)
		wire.PutBuf(buf)
		return nil, fmt.Errorf("tcpbus: encoding request to %s: %w", pc.addr, err)
	}
	if !pc.w.enqueue(buf) {
		pc.dropPending(id)
		pc.mu.Lock()
		err := pc.err
		pc.mu.Unlock()
		if err == nil {
			err = errors.New("connection closed")
		}
		return nil, fmt.Errorf("tcpbus: reading reply from %s: %w", pc.addr, err)
	}
	// The reply wait covers the remote handler's execution, so it gets the
	// (larger) read budget. No socket deadline can bound one call among
	// many on a shared connection, so the budget is a per-call timer.
	timer := time.NewTimer(n.readTimeout)
	defer timer.Stop()
	select {
	case res := <-ch:
		if res.err != nil {
			var remote *bus.RemoteError
			if errors.As(res.err, &remote) {
				return nil, res.err
			}
			return nil, fmt.Errorf("tcpbus: reading reply from %s: %w", pc.addr, res.err)
		}
		return res.payload, nil
	case <-timer.C:
		pc.dropPending(id)
		n.mTimeouts.Inc()
		return nil, fmt.Errorf("tcpbus: reading reply from %s: %w", pc.addr, &timeoutError{n.readTimeout})
	}
}

func (pc *peerConn) dropPending(id uint64) {
	pc.mu.Lock()
	delete(pc.pending, id)
	pc.mu.Unlock()
}

// getConn returns the live pooled connection for to, dialing one (and
// sending the framed preamble) if none exists.
func (e *endpoint) getConn(to bus.Address) (*peerConn, error) {
	e.poolMu.Lock()
	slot := e.pool[to]
	if slot == nil {
		slot = &connSlot{}
		e.pool[to] = slot
	}
	e.poolMu.Unlock()

	slot.mu.Lock()
	defer slot.mu.Unlock()
	if pc := slot.pc; pc != nil && pc.alive() {
		return pc, nil
	}
	n := e.net
	n.mDials.Inc()
	if slot.everHad {
		n.mReconnects.Inc()
	}
	conn, err := net.DialTimeout("tcp", string(to), n.dialTimeout)
	if err != nil {
		n.mDialErrs.Inc()
		return nil, fmt.Errorf("%w: %s: %v", bus.ErrUnreachable, to, err)
	}
	// Registering the conn and reserving the goroutine slots happens inside
	// track's critical section so Close cannot finish waiting between them.
	if !e.track(conn, 2) {
		return nil, bus.ErrClosed
	}
	pc := newPeerConn(e, to, conn)
	// The preamble rides the first frame's write batch.
	pre := append(wire.GetBuf(), wire.Preamble[:]...)
	pc.w.enqueueRaw(pre)
	slot.pc = pc
	slot.everHad = true
	n.mConnsOut.Add(1)
	go func() {
		defer e.wg.Done()
		pc.readLoop()
	}()
	go func() {
		defer e.wg.Done()
		pc.w.loop()
		// The writer exits on write failure (onErr already ran) or on
		// close; either way the connection is done.
	}()
	return pc, nil
}

// Call implements bus.Endpoint.
func (e *endpoint) Call(to bus.Address, msg any) (any, error) {
	if e.isClosed() {
		return nil, bus.ErrClosed
	}
	e.net.mCalls.Inc()
	if e.net.gobWire || e.isLegacy(to) {
		return e.legacyCall(to, msg)
	}
	res, err := e.framedCall(to, msg)
	if err == nil {
		return res, nil
	}
	// A connection that died before this peer ever produced a framed reply
	// is the signature of an old gob-only server tearing down the framed
	// opening: fall back to one-shot gob for this destination. Peers that
	// have answered in frames are never downgraded, and dial failures,
	// timeouts, and remote errors never trigger fallback.
	var cf *connFailedError
	if errors.As(err, &cf) && !e.isFramed(to) && !e.isClosed() {
		e.markLegacy(to)
		return e.legacyCall(to, msg)
	}
	return nil, err
}

func (e *endpoint) framedCall(to bus.Address, msg any) (any, error) {
	pc, err := e.getConn(to)
	if err != nil {
		return nil, err
	}
	return pc.roundTrip(msg)
}

// legacyCall speaks the pre-framing protocol: one short-lived connection,
// one gob envelope out, one gob reply back.
func (e *endpoint) legacyCall(to bus.Address, msg any) (any, error) {
	e.net.mDials.Inc()
	conn, err := net.DialTimeout("tcp", string(to), e.net.dialTimeout)
	if err != nil {
		e.net.mDialErrs.Inc()
		return nil, fmt.Errorf("%w: %s: %v", bus.ErrUnreachable, to, err)
	}
	defer conn.Close()
	env := envelope{From: e.addr, Payload: msg}
	if e.net.reg != nil {
		env.TraceID, env.SpanID = obs.Inject()
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(e.net.writeTimeout))
	if err := enc.Encode(&env); err != nil {
		e.net.countTimeout(err)
		return nil, fmt.Errorf("tcpbus: encoding request to %s: %w", to, err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(e.net.readTimeout))
	var rep reply
	if err := dec.Decode(&rep); err != nil {
		e.net.countTimeout(err)
		return nil, fmt.Errorf("tcpbus: reading reply from %s: %w", to, err)
	}
	if rep.IsErr {
		return nil, &bus.RemoteError{Msg: rep.Err, Code: rep.Code}
	}
	return rep.Payload, nil
}

// Close implements bus.Endpoint.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	// Sever in-flight connections so Close does not wait out their
	// deadlines — a hung peer must not delay shutdown.
	for conn := range e.conns {
		conn.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}
