// Package tcpbus implements bus.Network over real TCP sockets with gob
// framing. It powers the networked daemons (cmd/whopayd): every WhoPay
// protocol message that flows over the in-memory bus in tests and
// simulations flows over TCP here, unchanged.
//
// Addresses are "host:port" strings. Each Call opens a short-lived
// connection, writes one gob-encoded envelope, and reads one reply. Message
// payload types must be registered with RegisterType (an alias of
// gob.Register) before use; the core package registers all protocol
// messages in its init.
package tcpbus

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"whopay/internal/bus"
	"whopay/internal/obs"
)

// RegisterType registers a payload type for gob transport. Call it once per
// concrete message type (typically from an init function).
func RegisterType(v any) { gob.Register(v) }

// envelope frames a request on the wire. TraceID/SpanID are the optional
// obs trace identity (PROTOCOL.md): empty when the caller is untraced, in
// which case gob omits the zero-valued fields entirely, so the wire bytes
// are identical to pre-obs builds; decoders that predate the fields skip
// them, so the extension is backward compatible in both directions.
type envelope struct {
	From    bus.Address
	Payload any
	TraceID string
	SpanID  string
}

// reply frames a response on the wire. Code carries the machine-readable
// sentinel code registered with bus.RegisterErrorCode, so errors.Is on
// protocol sentinels (core.ErrCoinBusy, core.ErrUnknownCoin, ...) keeps
// working across the TCP hop — a plain string cannot feed errors.Is, and
// the retry layer needs the distinction to never replay protocol
// rejections.
type reply struct {
	Payload any
	Err     string
	Code    string
	IsErr   bool
}

// Network is a TCP-backed bus.Network. The zero value is not usable; use
// New.
type Network struct {
	dialTimeout  time.Duration
	callTimeout  time.Duration
	idleTimeout  time.Duration
	readTimeout  time.Duration
	writeTimeout time.Duration
	reg          *obs.Registry

	// obs handles; nil (no-op) unless WithObs is given.
	mConnsIn  *obs.Gauge
	mCalls    *obs.Counter
	mDialErrs *obs.Counter
	mTimeouts *obs.Counter
}

var _ bus.Network = (*Network)(nil)

// Option configures a Network.
type Option func(*Network)

// WithDialTimeout sets the TCP dial timeout (default 5s).
func WithDialTimeout(d time.Duration) Option {
	return func(n *Network) { n.dialTimeout = d }
}

// WithCallTimeout sets the caller's budget for the whole exchange — it
// bounds the wait for the reply, which includes the remote handler's
// execution time (default 30s).
func WithCallTimeout(d time.Duration) Option {
	return func(n *Network) { n.callTimeout = d }
}

// WithIdleTimeout bounds how long an accepted connection may take to
// deliver its complete request (default 10s). A peer that connects and
// then goes silent — or trickles bytes — is cut off at this deadline, so
// hung or malicious clients cannot pin server goroutines and file
// descriptors indefinitely.
func WithIdleTimeout(d time.Duration) Option {
	return func(n *Network) { n.idleTimeout = d }
}

// WithReadTimeout bounds the caller-side wait for reply bytes once the
// request is sent, when smaller than the call timeout (default: the call
// timeout).
func WithReadTimeout(d time.Duration) Option {
	return func(n *Network) { n.readTimeout = d }
}

// WithWriteTimeout bounds each side's write of its message (default 10s).
// A peer that stops draining its receive buffer stalls our write; this
// deadline frees the goroutine instead of wedging on it.
func WithWriteTimeout(d time.Duration) Option {
	return func(n *Network) { n.writeTimeout = d }
}

// WithObs enables transport metrics on reg: open inbound connections,
// outbound calls, dial failures, and deadline timeouts. It also activates
// trace propagation — outgoing envelopes carry the caller's ambient trace
// identity. Nil reg (the default) leaves the transport uninstrumented and
// the wire format byte-identical.
func WithObs(reg *obs.Registry) Option {
	return func(n *Network) { n.reg = reg }
}

// New returns a TCP Network.
func New(opts ...Option) *Network {
	n := &Network{
		dialTimeout:  5 * time.Second,
		callTimeout:  30 * time.Second,
		idleTimeout:  10 * time.Second,
		writeTimeout: 10 * time.Second,
	}
	for _, o := range opts {
		o(n)
	}
	if n.readTimeout == 0 || n.readTimeout > n.callTimeout {
		n.readTimeout = n.callTimeout
	}
	if n.reg != nil {
		n.reg.Help("whopay_tcpbus_open_conns", "Accepted connections currently being served.")
		n.reg.Help("whopay_tcpbus_calls_total", "Outbound calls attempted.")
		n.reg.Help("whopay_tcpbus_dial_errors_total", "Outbound dials that failed.")
		n.reg.Help("whopay_tcpbus_timeouts_total", "Calls that hit a read/write deadline.")
		n.mConnsIn = n.reg.Gauge("whopay_tcpbus_open_conns", nil)
		n.mCalls = n.reg.Counter("whopay_tcpbus_calls_total", nil)
		n.mDialErrs = n.reg.Counter("whopay_tcpbus_dial_errors_total", nil)
		n.mTimeouts = n.reg.Counter("whopay_tcpbus_timeouts_total", nil)
	}
	return n
}

// countTimeout bumps the timeout counter when err is a deadline expiry.
func (n *Network) countTimeout(err error) {
	if n.mTimeouts == nil {
		return
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		n.mTimeouts.Inc()
	}
}

// Listen implements bus.Network: it binds a TCP listener on addr and serves
// requests with h until the endpoint is closed. Pass ":0" style addresses
// to pick a free port; Endpoint.Addr reports the bound address.
func (n *Network) Listen(addr bus.Address, h bus.Handler) (bus.Endpoint, error) {
	if h == nil {
		return nil, errors.New("tcpbus: nil handler")
	}
	ln, err := net.Listen("tcp", string(addr))
	if err != nil {
		return nil, fmt.Errorf("tcpbus: listen %s: %w", addr, err)
	}
	ep := &endpoint{
		net:     n,
		ln:      ln,
		addr:    bus.Address(ln.Addr().String()),
		handler: h,
		done:    make(chan struct{}),
		conns:   make(map[net.Conn]struct{}),
	}
	ep.wg.Add(1)
	go ep.serve()
	return ep, nil
}

type endpoint struct {
	net     *Network
	ln      net.Listener
	addr    bus.Address
	handler bus.Handler

	mu     sync.Mutex
	closed bool
	done   chan struct{}
	wg     sync.WaitGroup
	conns  map[net.Conn]struct{}
}

// track registers an accepted connection so Close can sever it; it reports
// false (and closes the conn) when the endpoint is already shutting down.
func (e *endpoint) track(conn net.Conn) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		conn.Close()
		return false
	}
	e.conns[conn] = struct{}{}
	return true
}

func (e *endpoint) untrack(conn net.Conn) {
	e.mu.Lock()
	delete(e.conns, conn)
	e.mu.Unlock()
}

var _ bus.Endpoint = (*endpoint)(nil)

// Addr implements bus.Endpoint.
func (e *endpoint) Addr() bus.Address { return e.addr }

// Accept-failure backoff bounds: a persistent error (fd exhaustion, a
// half-dead listener) must not spin the accept loop at 100% CPU.
const (
	acceptBackoffMin = time.Millisecond
	acceptBackoffMax = 100 * time.Millisecond
)

func (e *endpoint) serve() {
	defer e.wg.Done()
	var backoff time.Duration
	for {
		conn, err := e.ln.Accept()
		if err != nil {
			select {
			case <-e.done:
				return
			default:
			}
			// Transient accept failure; back off exponentially so a
			// persistent error cannot spin the loop, and stay
			// responsive to Close while sleeping.
			if backoff == 0 {
				backoff = acceptBackoffMin
			} else if backoff *= 2; backoff > acceptBackoffMax {
				backoff = acceptBackoffMax
			}
			select {
			case <-e.done:
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 0
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			e.serveConn(conn)
		}()
	}
}

func (e *endpoint) serveConn(conn net.Conn) {
	if !e.track(conn) {
		return
	}
	defer e.untrack(conn)
	defer conn.Close()
	e.net.mConnsIn.Add(1)
	defer e.net.mConnsIn.Add(-1)
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	// The idle deadline is absolute and covers the whole request: a client
	// that connects and goes silent, or trickles one byte at a time, is cut
	// off here instead of pinning this goroutine for the full call timeout.
	_ = conn.SetReadDeadline(time.Now().Add(e.net.idleTimeout))
	var env envelope
	if err := dec.Decode(&env); err != nil {
		return
	}
	if env.TraceID != "" {
		// The handler serves this request start-to-finish on this
		// goroutine, so adopting the caller's trace identity here makes
		// every span the entity opens while handling it a child of the
		// remote caller's span.
		release := obs.Adopt(env.TraceID, env.SpanID)
		defer release()
	}
	resp, err := e.handler(env.From, env.Payload)
	out := reply{Payload: resp}
	if err != nil {
		out = reply{Err: err.Error(), Code: bus.ErrorCode(err), IsErr: true}
	}
	// The write deadline starts after the handler: a client that stops
	// draining its receive buffer cannot wedge the reply.
	_ = conn.SetWriteDeadline(time.Now().Add(e.net.writeTimeout))
	_ = enc.Encode(&out)
}

// Call implements bus.Endpoint.
func (e *endpoint) Call(to bus.Address, msg any) (any, error) {
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, bus.ErrClosed
	}
	e.net.mCalls.Inc()
	conn, err := net.DialTimeout("tcp", string(to), e.net.dialTimeout)
	if err != nil {
		e.net.mDialErrs.Inc()
		return nil, fmt.Errorf("%w: %s: %v", bus.ErrUnreachable, to, err)
	}
	defer conn.Close()
	env := envelope{From: e.addr, Payload: msg}
	if e.net.reg != nil {
		// Trace identity crosses the wire only on instrumented networks, so
		// uninstrumented daemons keep pre-obs wire bytes even when some
		// other subsystem in the process activated tracing.
		env.TraceID, env.SpanID = obs.Inject()
	}
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	_ = conn.SetWriteDeadline(time.Now().Add(e.net.writeTimeout))
	if err := enc.Encode(&env); err != nil {
		e.net.countTimeout(err)
		return nil, fmt.Errorf("tcpbus: encoding request to %s: %w", to, err)
	}
	// The reply wait covers the remote handler's execution, so it gets the
	// (larger) read budget rather than the write deadline.
	_ = conn.SetReadDeadline(time.Now().Add(e.net.readTimeout))
	var rep reply
	if err := dec.Decode(&rep); err != nil {
		e.net.countTimeout(err)
		return nil, fmt.Errorf("tcpbus: reading reply from %s: %w", to, err)
	}
	if rep.IsErr {
		return nil, &bus.RemoteError{Msg: rep.Err, Code: rep.Code}
	}
	return rep.Payload, nil
}

// Close implements bus.Endpoint.
func (e *endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	close(e.done)
	// Sever in-flight connections so Close does not wait out their
	// deadlines — a hung peer must not delay shutdown.
	for conn := range e.conns {
		conn.Close()
	}
	e.mu.Unlock()
	err := e.ln.Close()
	e.wg.Wait()
	return err
}
