package tcpbus

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whopay/internal/bus"
)

type testMsg struct {
	Kind string
	N    int
}

func init() {
	RegisterType(testMsg{})
	RegisterType("")
	RegisterType(0)
}

func TestCallRoundTrip(t *testing.T) {
	n := New()
	srv, err := n.Listen("127.0.0.1:0", func(from bus.Address, msg any) (any, error) {
		m, ok := msg.(testMsg)
		if !ok {
			return nil, errors.New("bad type")
		}
		m.N++
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	resp, err := cli.Call(srv.Addr(), testMsg{Kind: "inc", N: 41})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := resp.(testMsg)
	if !ok || got.N != 42 {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestFromAddressDelivered(t *testing.T) {
	n := New()
	var gotFrom bus.Address
	srv, err := n.Listen("127.0.0.1:0", func(from bus.Address, msg any) (any, error) {
		gotFrom = from
		return "ok", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(srv.Addr(), testMsg{}); err != nil {
		t.Fatal(err)
	}
	if gotFrom != cli.Addr() {
		t.Fatalf("from = %s, want %s", gotFrom, cli.Addr())
	}
}

func TestRemoteError(t *testing.T) {
	n := New()
	srv, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) {
		return nil, errors.New("coin not valid")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Call(srv.Addr(), testMsg{})
	var remote *bus.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if !strings.Contains(remote.Msg, "coin not valid") {
		t.Fatalf("Msg = %q", remote.Msg)
	}
}

func TestUnreachable(t *testing.T) {
	n := New(WithDialTimeout(200 * time.Millisecond))
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Port 1 on localhost: connection refused.
	if _, err := cli.Call("127.0.0.1:1", testMsg{}); !errors.Is(err, bus.ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
}

func TestClosedEndpointRejectsCalls(t *testing.T) {
	n := New()
	srv, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Call(srv.Addr(), testMsg{}); !errors.Is(err, bus.ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Server is gone; new calls fail as unreachable.
	cli2, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli2.Close()
	if _, err := cli2.Call(srv.Addr(), testMsg{}); !errors.Is(err, bus.ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	n := New()
	srv, err := n.Listen("127.0.0.1:0", func(from bus.Address, msg any) (any, error) {
		return msg, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	const workers, each = 4, 20
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				resp, err := cli.Call(srv.Addr(), testMsg{Kind: "c", N: w*1000 + i})
				if err != nil {
					t.Error(err)
					return
				}
				if resp.(testMsg).N != w*1000+i {
					t.Errorf("mismatched response")
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestNilHandlerRejected(t *testing.T) {
	n := New()
	if _, err := n.Listen("127.0.0.1:0", nil); err == nil {
		t.Fatal("Listen accepted nil handler")
	}
}

// errTestBusy is a package-local sentinel standing in for core's protocol
// sentinels (which tcpbus cannot import without a cycle).
var errTestBusy = errors.New("tcpbus_test: busy")

// TestSentinelCodeSurvivesTCPHop: a handler error matching a registered
// sentinel must satisfy errors.Is on the caller's side of the TCP hop.
func TestSentinelCodeSurvivesTCPHop(t *testing.T) {
	bus.RegisterErrorCode("tcpbus_test.busy", errTestBusy)
	n := New()
	srv, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) {
		return nil, fmt.Errorf("wrapped: %w", errTestBusy)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Call(srv.Addr(), testMsg{})
	if err == nil {
		t.Fatal("expected error")
	}
	var remote *bus.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %T %v, want *bus.RemoteError", err, err)
	}
	if remote.Code != "tcpbus_test.busy" {
		t.Fatalf("code = %q", remote.Code)
	}
	if !errors.Is(err, errTestBusy) {
		t.Fatalf("errors.Is lost the sentinel across the hop: %v", err)
	}
	// An unregistered error still crosses as a plain remote error.
	if errors.Is(err, errors.New("other")) {
		t.Fatal("errors.Is matched an unrelated error")
	}
}

// TestSlowClientDoesNotWedgeServer: connections that never deliver a
// request — silent or trickling bytes — are cut off by the idle timeout,
// and legitimate calls keep succeeding while they hang around. This is the
// "hung peer must not wedge the broker" guarantee.
func TestSlowClientDoesNotWedgeServer(t *testing.T) {
	n := New(WithIdleTimeout(100 * time.Millisecond))
	srv, err := n.Listen("127.0.0.1:0", func(_ bus.Address, msg any) (any, error) {
		return msg, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A silent client and a trickler that sends garbage prefix bytes then
	// stalls mid-"request".
	silent, err := net.Dial("tcp", string(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer silent.Close()
	trickler, err := net.Dial("tcp", string(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer trickler.Close()
	if _, err := trickler.Write([]byte{0x13, 0xff}); err != nil {
		t.Fatal(err)
	}

	// A real call succeeds while the slow connections are still open.
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(srv.Addr(), testMsg{Kind: "live", N: 1}); err != nil {
		t.Fatalf("call wedged behind slow clients: %v", err)
	}

	// The server severs both slow connections within the idle timeout: our
	// next read observes the close instead of blocking forever.
	for name, conn := range map[string]net.Conn{"silent": silent, "trickler": trickler} {
		_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Errorf("%s connection still open past the idle timeout", name)
		} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
			t.Errorf("%s connection not severed by the server", name)
		}
	}
}

// TestCloseSeversHungConnections: Close must not wait out the idle
// deadline of a peer that is sitting on an open connection.
func TestCloseSeversHungConnections(t *testing.T) {
	n := New(WithIdleTimeout(time.Hour)) // deadline alone would block Close
	srv, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", string(srv.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Let the server accept the connection before closing.
	time.Sleep(20 * time.Millisecond)
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close hung behind an idle connection")
	}
}

// countingListener wraps a (pre-closed) listener and counts Accept calls.
type countingListener struct {
	net.Listener
	accepts atomic.Int64
}

func (c *countingListener) Accept() (net.Conn, error) {
	c.accepts.Add(1)
	return c.Listener.Accept()
}

// TestServeBacksOffOnPersistentAcceptError: a listener that fails every
// Accept (here: pre-closed out from under the endpoint) must not spin the
// serve loop. Before the backoff fix this produced hundreds of thousands of
// Accept calls in 60ms; with 1ms→100ms exponential backoff the count stays
// tiny.
func TestServeBacksOffOnPersistentAcceptError(t *testing.T) {
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	raw.Close() // every Accept now fails immediately
	cl := &countingListener{Listener: raw}
	e := &endpoint{
		net:     New(),
		ln:      cl,
		addr:    bus.Address(raw.Addr().String()),
		handler: func(bus.Address, any) (any, error) { return nil, nil },
		done:    make(chan struct{}),
	}
	e.wg.Add(1)
	go e.serve()
	time.Sleep(60 * time.Millisecond)
	close(e.done)
	e.wg.Wait()
	// 60ms under 1,2,4,...,100ms backoff allows ~8 attempts; leave slack.
	if n := cl.accepts.Load(); n > 20 {
		t.Fatalf("accept loop spun %d times in 60ms; backoff not applied", n)
	} else if n == 0 {
		t.Fatal("serve never called Accept")
	}
}
