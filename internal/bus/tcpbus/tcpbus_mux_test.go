package tcpbus

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/obs"
)

// Tests for the multiplexed framed transport: concurrent calls over one
// connection, pipelining, reconnect, gob interop in both directions, and
// the transport metrics.

// TestMuxHammer drives many concurrent callers through one pooled
// connection; run under -race this is the mux's data-race net. Every reply
// must reach the call that issued its request — a crossed request ID wires
// one caller's coins to another.
func TestMuxHammer(t *testing.T) {
	n := New()
	srv, err := n.Listen("127.0.0.1:0", func(_ bus.Address, msg any) (any, error) {
		m := msg.(testMsg)
		if m.Kind == "err" {
			return nil, fmt.Errorf("no %d", m.N)
		}
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const workers, each = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				id := w*10000 + i
				kind := "ok"
				if i%5 == 0 {
					kind = "err"
				}
				resp, err := cli.Call(srv.Addr(), testMsg{Kind: kind, N: id})
				if kind == "err" {
					var remote *bus.RemoteError
					if !errors.As(err, &remote) || !strings.Contains(remote.Msg, fmt.Sprint(id)) {
						t.Errorf("worker %d call %d: err = %v, want remote 'no %d'", w, i, err, id)
						return
					}
					continue
				}
				if err != nil {
					t.Errorf("worker %d call %d: %v", w, i, err)
					return
				}
				if got := resp.(testMsg).N; got != id {
					t.Errorf("worker %d call %d: reply for %d crossed wires", w, i, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestMuxPipelining: a slow handler must not head-of-line block later
// requests on the same connection — each request gets its own handler
// goroutine and replies flow back as they finish.
func TestMuxPipelining(t *testing.T) {
	n := New()
	slowGate := make(chan struct{})
	srv, err := n.Listen("127.0.0.1:0", func(_ bus.Address, msg any) (any, error) {
		m := msg.(testMsg)
		if m.Kind == "slow" {
			<-slowGate
		}
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	slowDone := make(chan error, 1)
	go func() {
		_, err := cli.Call(srv.Addr(), testMsg{Kind: "slow"})
		slowDone <- err
	}()
	// Give the slow request time to occupy the connection.
	time.Sleep(50 * time.Millisecond)
	if _, err := cli.Call(srv.Addr(), testMsg{Kind: "fast", N: 1}); err != nil {
		t.Fatalf("fast call blocked behind slow handler: %v", err)
	}
	select {
	case err := <-slowDone:
		t.Fatalf("slow call finished before its gate opened: %v", err)
	default:
	}
	close(slowGate)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestMuxReconnect: a severed pooled connection fails the calls in flight
// on it, and the next call transparently redials.
func TestMuxReconnect(t *testing.T) {
	reg := obs.NewRegistry()
	n := New(WithObs(reg))
	srv, err := New().Listen("127.0.0.1:0", func(_ bus.Address, msg any) (any, error) {
		return msg, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	if _, err := cli.Call(srv.Addr(), testMsg{N: 1}); err != nil {
		t.Fatal(err)
	}
	// Reach into the pool and sever the live connection out from under the
	// endpoint, as a mid-call network partition would.
	ep := cli.(*endpoint)
	ep.poolMu.Lock()
	slot := ep.pool[srv.Addr()]
	ep.poolMu.Unlock()
	slot.mu.Lock()
	pc := slot.pc
	slot.mu.Unlock()
	if pc == nil {
		t.Fatal("no pooled connection after a successful call")
	}
	pc.conn.Close()

	// The next calls succeed over a fresh connection (the first may observe
	// the dead socket before the read loop clears it).
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := cli.Call(srv.Addr(), testMsg{N: 2}); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("calls kept failing after the connection was severed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v, _ := reg.Value("whopay_tcpbus_reconnects_total", nil); v < 1 {
		t.Errorf("reconnects_total = %v, want >= 1", v)
	}
}

// TestFramedCallerLegacyServer: a framed caller meeting a pre-framing
// server (which reads one gob envelope and chokes on the preamble) must
// fall back to one-shot gob and keep working — the mixed-version interop
// guarantee.
func TestFramedCallerLegacyServer(t *testing.T) {
	// A faithful pre-framing server: accept, decode one gob envelope, run
	// the handler, encode one gob reply, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var served int64
	var mu sync.Mutex
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				var env envelope
				if err := gob.NewDecoder(conn).Decode(&env); err != nil {
					return // the framed preamble lands here
				}
				m := env.Payload.(testMsg)
				m.N++
				mu.Lock()
				served++
				mu.Unlock()
				_ = gob.NewEncoder(conn).Encode(&reply{Payload: m})
			}()
		}
	}()

	n := New()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	to := bus.Address(ln.Addr().String())
	for i := 0; i < 3; i++ {
		resp, err := cli.Call(to, testMsg{Kind: "legacy", N: i})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := resp.(testMsg).N; got != i+1 {
			t.Fatalf("call %d: N = %d, want %d", i, got, i+1)
		}
	}
	if !cli.(*endpoint).isLegacy(to) {
		t.Error("address not marked legacy after gob fallback")
	}
	mu.Lock()
	defer mu.Unlock()
	if served != 3 {
		t.Errorf("legacy server answered %d calls, want 3", served)
	}
}

// TestGobWireCallerFramedServer: a caller forced onto the legacy wire
// (WithGobWire, emulating an old node) must interoperate with a framed
// listener, which sniffs the gob stream and serves it old-style.
func TestGobWireCallerFramedServer(t *testing.T) {
	srvNet := New()
	srv, err := srvNet.Listen("127.0.0.1:0", func(_ bus.Address, msg any) (any, error) {
		m := msg.(testMsg)
		m.N *= 2
		return m, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cliNet := New(WithGobWire())
	cli, err := cliNet.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 1; i <= 3; i++ {
		resp, err := cli.Call(srv.Addr(), testMsg{N: i})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := resp.(testMsg).N; got != 2*i {
			t.Fatalf("call %d: N = %d, want %d", i, got, 2*i)
		}
	}
	// Errors cross the legacy wire too.
	srv2, err := srvNet.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) {
		return nil, errors.New("nope")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	_, err = cli.Call(srv2.Addr(), testMsg{})
	var remote *bus.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("err = %v, want RemoteError", err)
	}
}

// TestMuxMetrics: sequential calls to one destination reuse a single
// pooled connection, and the conn/dial/frame counters say so.
func TestMuxMetrics(t *testing.T) {
	cliReg := obs.NewRegistry()
	srvReg := obs.NewRegistry()
	srv, err := New(WithObs(srvReg)).Listen("127.0.0.1:0", func(_ bus.Address, msg any) (any, error) {
		return msg, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := New(WithObs(cliReg)).Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := cli.Call(srv.Addr(), testMsg{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	check := func(reg *obs.Registry, name string, want float64) {
		t.Helper()
		if v, ok := reg.Value(name, nil); !ok || v != want {
			t.Errorf("%s = %v (ok=%v), want %v", name, v, ok, want)
		}
	}
	check(cliReg, "whopay_tcpbus_calls_total", calls)
	check(cliReg, "whopay_tcpbus_dials_total", 1)
	check(cliReg, "whopay_tcpbus_reconnects_total", 0)
	check(cliReg, "whopay_tcpbus_outbound_conns", 1)
	check(cliReg, "whopay_tcpbus_frames_tx_total", calls)
	check(cliReg, "whopay_tcpbus_frames_rx_total", calls)
	check(srvReg, "whopay_tcpbus_open_conns", 1)
	check(srvReg, "whopay_tcpbus_frames_rx_total", calls)
	if tx, _ := cliReg.Value("whopay_tcpbus_bytes_tx_total", nil); tx <= 0 {
		t.Errorf("bytes_tx_total = %v, want > 0", tx)
	}
	// Closing the client releases the pooled connection.
	cli.Close()
	if v, _ := cliReg.Value("whopay_tcpbus_outbound_conns", nil); v != 0 {
		t.Errorf("outbound_conns after close = %v, want 0", v)
	}
}

// TestIdleConnReaped: a pooled connection with no traffic is closed after
// the idle timeout and the gauge returns to zero.
func TestIdleConnReaped(t *testing.T) {
	reg := obs.NewRegistry()
	n := New(WithObs(reg), WithIdleTimeout(150*time.Millisecond))
	srv, err := New().Listen("127.0.0.1:0", func(_ bus.Address, msg any) (any, error) {
		return msg, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Call(srv.Addr(), testMsg{N: 1}); err != nil {
		t.Fatal(err)
	}
	if v, _ := reg.Value("whopay_tcpbus_outbound_conns", nil); v != 1 {
		t.Fatalf("outbound_conns = %v, want 1", v)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if v, _ := reg.Value("whopay_tcpbus_outbound_conns", nil); v == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection never reaped")
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The pool recovers: the next call dials fresh and succeeds.
	if _, err := cli.Call(srv.Addr(), testMsg{N: 2}); err != nil {
		t.Fatalf("call after reap: %v", err)
	}
}

// TestCallTimeoutIsTimeout: a handler that outlives the call budget yields
// an error the retry layer classifies as a timeout (Timeout() bool), and
// the timeout counter moves.
func TestCallTimeoutIsTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	n := New(WithObs(reg), WithCallTimeout(150*time.Millisecond))
	gate := make(chan struct{})
	srv, err := New().Listen("127.0.0.1:0", func(bus.Address, any) (any, error) {
		<-gate
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// LIFO: the gate must open before srv.Close waits out the handler.
	defer close(gate)
	cli, err := n.Listen("127.0.0.1:0", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.Call(srv.Addr(), testMsg{})
	if err == nil {
		t.Fatal("expected timeout")
	}
	var to interface{ Timeout() bool }
	if !errors.As(err, &to) || !to.Timeout() {
		t.Fatalf("err = %v, want a Timeout() error", err)
	}
	if v, _ := reg.Value("whopay_tcpbus_timeouts_total", nil); v < 1 {
		t.Errorf("timeouts_total = %v, want >= 1", v)
	}
}

// registerDupOther registers a *different* local type that derives the same
// gob wire name as the one in TestRegisterTypeDuplicatePanics (function-
// local type names carry only the package path).
func registerDupOther() {
	type dupWireName struct{ B string }
	RegisterType(dupWireName{})
}

// TestRegisterTypeDuplicatePanics: re-registering the same type is a
// no-op; binding a different type to an already-taken wire name panics
// with a message naming the conflict.
func TestRegisterTypeDuplicatePanics(t *testing.T) {
	type dupWireName struct{ A int }
	RegisterType(dupWireName{})
	RegisterType(dupWireName{}) // same type again: fine
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("conflicting RegisterType did not panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "RegisterType") || !strings.Contains(msg, "dupWireName") {
			t.Fatalf("panic message unclear: %s", msg)
		}
	}()
	registerDupOther()
}
