package bus

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func echoHandler(from Address, msg any) (any, error) { return msg, nil }

func TestCallRoundTrip(t *testing.T) {
	net := NewMemory()
	_, err := net.Listen("b", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.Call("b", "ping")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "ping" {
		t.Fatalf("resp = %v, want ping", resp)
	}
}

func TestCallUnknownAddress(t *testing.T) {
	net := NewMemory()
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("nowhere", "x"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
}

func TestOfflineUnreachable(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	net.SetOnline("b", false)
	if net.Online("b") {
		t.Fatal("Online = true after SetOnline(false)")
	}
	if _, err := a.Call("b", "x"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("got %v, want ErrUnreachable", err)
	}
	net.SetOnline("b", true)
	if _, err := a.Call("b", "x"); err != nil {
		t.Fatalf("call after re-online: %v", err)
	}
}

func TestDuplicateAddress(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("a", echoHandler); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("a", echoHandler); !errors.Is(err, ErrAddressInUse) {
		t.Fatalf("got %v, want ErrAddressInUse", err)
	}
}

func TestNilHandlerRejected(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("a", nil); err == nil {
		t.Fatal("Listen accepted nil handler")
	}
}

func TestHandlerErrorBecomesRemoteError(t *testing.T) {
	net := NewMemory()
	_, err := net.Listen("b", func(from Address, msg any) (any, error) {
		return nil, errors.New("no such coin")
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	_, err = a.Call("b", "x")
	var remote *RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("got %v, want RemoteError", err)
	}
	if remote.Msg != "no such coin" {
		t.Fatalf("Msg = %q", remote.Msg)
	}
}

func TestClosedEndpoint(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Call("b", "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	// Closing twice is fine; address is free again.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Listen("a", echoHandler); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestMessageCounting(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := a.Call("b", i); err != nil {
			t.Fatal(err)
		}
	}
	sa, sb := net.Stats("a"), net.Stats("b")
	if sa.Sent != calls || sa.Received != calls {
		t.Fatalf("a stats = %+v, want %d/%d", sa, calls, calls)
	}
	if sb.Sent != calls || sb.Received != calls {
		t.Fatalf("b stats = %+v, want %d/%d", sb, calls, calls)
	}
	if got := net.TotalMessages(); got != 2*calls {
		t.Fatalf("TotalMessages = %d, want %d", got, 2*calls)
	}
	if sa.Total() != 2*calls {
		t.Fatalf("Total = %d, want %d", sa.Total(), 2*calls)
	}
}

func TestStatsUnknownAddress(t *testing.T) {
	net := NewMemory()
	if s := net.Stats("ghost"); s != (MsgStats{}) {
		t.Fatalf("Stats(ghost) = %+v, want zero", s)
	}
}

func TestNestedCallsFromHandler(t *testing.T) {
	// c's handler calls b while servicing a's request — the pattern the
	// WhoPay transfer protocol uses (owner contacts payee inside the
	// handler for the payer's request).
	net := NewMemory()
	if _, err := net.Listen("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	var c Endpoint
	c, err := net.Listen("c", func(from Address, msg any) (any, error) {
		return c.Call("b", msg)
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.Call("c", "nested")
	if err != nil {
		t.Fatal(err)
	}
	if resp != "nested" {
		t.Fatalf("resp = %v", resp)
	}
}

func TestConcurrentCalls(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("srv", echoHandler); err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ep, err := net.Listen(Address(fmt.Sprintf("cli%d", w)), echoHandler)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < each; i++ {
				if _, err := ep.Call("srv", i); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s := net.Stats("srv")
	if s.Received != workers*each {
		t.Fatalf("srv received %d, want %d", s.Received, workers*each)
	}
}

// TestConcurrentOnlineFlapping hammers SetOnline from one goroutine while
// callers and probers run against the same address — exactly how the chaos
// suite flaps endpoints mid-payment. Every call must cleanly succeed or fail
// with ErrUnreachable (nothing else), and the bus must stay race-clean.
func TestConcurrentOnlineFlapping(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("b", echoHandler); err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	const flips = 300
	var wg sync.WaitGroup
	badCall := make(chan error, 1)
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			net.SetOnline("b", i%2 == 0)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			if _, err := a.Call("b", i); err != nil && !errors.Is(err, ErrUnreachable) {
				select {
				case badCall <- fmt.Errorf("call %d: %v", i, err):
				default:
				}
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < flips; i++ {
			net.Online("b")
			net.Stats("b")
		}
	}()
	wg.Wait()
	select {
	case err := <-badCall:
		t.Fatal(err)
	default:
	}
	// Flapping must leave no sticky state: back online, calls flow.
	net.SetOnline("b", true)
	if _, err := a.Call("b", "after"); err != nil {
		t.Fatalf("call after flapping settled: %v", err)
	}
}

// TestFailedCallAccounting pins the accounting rules the paper's message
// cost metric depends on: an unreachable call carries nothing (the request
// never left), while a call the handler rejects still carries both the
// request and the error reply — rejections are not free.
func TestFailedCallAccounting(t *testing.T) {
	net := NewMemory()
	if _, err := net.Listen("rejecter", func(from Address, msg any) (any, error) {
		return nil, errors.New("rejected")
	}); err != nil {
		t.Fatal(err)
	}
	a, err := net.Listen("a", echoHandler)
	if err != nil {
		t.Fatal(err)
	}

	net.SetOnline("rejecter", false)
	if _, err := a.Call("rejecter", 1); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("offline call: got %v, want ErrUnreachable", err)
	}
	if s := net.Stats("a"); s != (MsgStats{}) {
		t.Fatalf("unreachable call counted traffic: %+v", s)
	}

	net.SetOnline("rejecter", true)
	if _, err := a.Call("rejecter", 2); err == nil {
		t.Fatal("want handler rejection, got nil")
	}
	sa, sr := net.Stats("a"), net.Stats("rejecter")
	if sa.Sent != 1 || sa.Received != 1 {
		t.Fatalf("caller stats after rejection = %+v, want 1 sent / 1 received", sa)
	}
	if sr.Sent != 1 || sr.Received != 1 {
		t.Fatalf("rejecter stats = %+v, want 1 sent / 1 received", sr)
	}
	if got := net.TotalMessages(); got != 2 {
		t.Fatalf("TotalMessages = %d, want 2", got)
	}
}
