package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

// Fuzz targets for the frame decoder. The transport feeds these functions
// bytes straight off the network, so the bar is absolute: truncated,
// corrupt, oversized, or type-confused input must produce an error — never
// a panic, and never an allocation larger than the input justifies.

func seedFrames(f *testing.F) {
	add := func(fr Frame, pfn func([]byte) ([]byte, error)) {
		enc, err := AppendFrame(nil, &fr, pfn)
		if err == nil {
			f.Add(enc)
		}
	}
	add(Frame{Kind: KindRequest, ReqID: 1, Tag: 7, From: "127.0.0.1:1"},
		func(b []byte) ([]byte, error) { return append(b, 1, 2, 3), nil })
	add(Frame{Kind: KindRequest, Flags: FlagTraced, ReqID: 2, Tag: 9,
		From: "a:1", TraceID: "t", SpanID: "s"},
		func(b []byte) ([]byte, error) { return append(b, 0xff), nil })
	add(Frame{Kind: KindReply, Flags: FlagError, ReqID: 3, ErrMsg: "m", ErrCode: "c"}, nil)
	add(Frame{Kind: KindReply, Flags: FlagGob, ReqID: 4},
		func(b []byte) ([]byte, error) { return append(b, 0x05, 0x01), nil })
	f.Add([]byte{})
	f.Add([]byte{'W', 'P', 1, KindRequest, 0})
	f.Add(bytes.Repeat([]byte{0xff}, 32))
}

// FuzzParseFrame: arbitrary frame bodies must parse or error, and a body
// that parses must re-encode to itself (the header is canonical).
func FuzzParseFrame(f *testing.F) {
	seedFrames(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := ParseFrame(body)
		if err != nil {
			return
		}
		re, err := AppendFrame(nil, &fr, func(b []byte) ([]byte, error) {
			return append(b, fr.Payload...), nil
		})
		if err != nil {
			t.Fatalf("parsed frame failed to re-encode: %v", err)
		}
		if !bytes.Equal(re[4:], body) {
			t.Fatalf("non-canonical frame accepted: %d in, %d out", len(body), len(re)-4)
		}
	})
}

// FuzzReadFrame: arbitrary streams (the fuzzer controls the length prefix
// too) must never make ReadFrame allocate beyond MaxFrameSize or panic,
// and whatever it returns must be exactly the declared body.
func FuzzReadFrame(f *testing.F) {
	seedFrames(f)
	f.Fuzz(func(t *testing.T, stream []byte) {
		var scratch []byte
		r := bytes.NewReader(stream)
		for {
			body, s2, err := ReadFrame(r, scratch, nil)
			scratch = s2
			if err != nil {
				return
			}
			if len(body) > MaxFrameSize {
				t.Fatalf("body %d bytes exceeds MaxFrameSize", len(body))
			}
			// The returned body must be the declared slice of the stream.
			if _, err := ParseFrame(body); err != nil {
				// Malformed content is fine; the framing held.
				continue
			}
		}
	})
}

// TestReadFrameHonorsDeclaredLength pins the framing invariant the fuzz
// target relies on: the body returned is exactly the length the prefix
// declared, independent of what follows in the stream.
func TestReadFrameHonorsDeclaredLength(t *testing.T) {
	frame, err := AppendFrame(nil, &Frame{Kind: KindReply, ReqID: 1, Tag: 2},
		func(b []byte) ([]byte, error) { return append(b, 'x', 'y'), nil })
	if err != nil {
		t.Fatal(err)
	}
	stream := append(append([]byte{}, frame...), "trailing-garbage"...)
	body, _, err := ReadFrame(bytes.NewReader(stream), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	declared := binary.BigEndian.Uint32(frame)
	if uint32(len(body)) != declared {
		t.Fatalf("body %d bytes, declared %d", len(body), declared)
	}
}

// TestReadFrameScratchReuse: a grown scratch buffer is reused for the next
// frame instead of reallocating.
func TestReadFrameScratchReuse(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < 3; i++ {
		frame, err := AppendFrame(nil, &Frame{Kind: KindReply, ReqID: uint64(i), Tag: 1},
			func(b []byte) ([]byte, error) { return append(b, bytes.Repeat([]byte{byte(i)}, 100)...), nil })
		if err != nil {
			t.Fatal(err)
		}
		stream.Write(frame)
	}
	var scratch []byte
	r := bytes.NewReader(stream.Bytes())
	var lastCap int
	for i := 0; ; i++ {
		body, s2, err := ReadFrame(r, scratch, nil)
		if err == io.EOF {
			if i != 3 {
				t.Fatalf("read %d frames, want 3", i)
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		scratch = s2
		if i > 0 && cap(scratch) != lastCap {
			t.Fatalf("scratch reallocated between equal-size frames: %d -> %d", lastCap, cap(scratch))
		}
		lastCap = cap(scratch)
		_ = body
	}
}
