package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestScalarRoundTrips(t *testing.T) {
	var dst []byte
	dst = AppendUvarint(dst, 0)
	dst = AppendUvarint(dst, 300)
	dst = AppendInt(dst, -7)
	dst = AppendInt(dst, 1<<40)
	dst = AppendU64(dst, 0xdeadbeefcafe)
	dst = AppendBytes(dst, []byte("abc"))
	dst = AppendBytes(dst, nil)
	dst = AppendString(dst, "hello")
	dst = AppendBool(dst, true)
	dst = AppendBool(dst, false)
	dst = AppendRaw(dst, []byte{9, 9})

	d := NewDecoder(dst)
	if v, err := d.Uvarint(); err != nil || v != 0 {
		t.Fatalf("uvarint 0: %v %v", v, err)
	}
	if v, err := d.Uvarint(); err != nil || v != 300 {
		t.Fatalf("uvarint 300: %v %v", v, err)
	}
	if v, err := d.Int(); err != nil || v != -7 {
		t.Fatalf("int -7: %v %v", v, err)
	}
	if v, err := d.Int(); err != nil || v != 1<<40 {
		t.Fatalf("int 2^40: %v %v", v, err)
	}
	if v, err := d.U64(); err != nil || v != 0xdeadbeefcafe {
		t.Fatalf("u64: %x %v", v, err)
	}
	if b, err := d.Bytes(); err != nil || string(b) != "abc" {
		t.Fatalf("bytes: %q %v", b, err)
	}
	if b, err := d.Bytes(); err != nil || b != nil {
		t.Fatalf("empty bytes must decode nil (gob parity): %#v %v", b, err)
	}
	if s, err := d.String(); err != nil || s != "hello" {
		t.Fatalf("string: %q %v", s, err)
	}
	if v, err := d.Bool(); err != nil || !v {
		t.Fatalf("bool true: %v %v", v, err)
	}
	if v, err := d.Bool(); err != nil || v {
		t.Fatalf("bool false: %v %v", v, err)
	}
	var raw [2]byte
	if err := d.Fixed(raw[:]); err != nil || raw != [2]byte{9, 9} {
		t.Fatalf("fixed: %v %v", raw, err)
	}
	if err := d.Done(); err != nil {
		t.Fatalf("trailing bytes: %v", err)
	}
}

func TestDecoderRejectsCorruption(t *testing.T) {
	cases := map[string]func(d *Decoder) error{
		"truncated uvarint":  func(d *Decoder) error { _, err := d.Uvarint(); return err },
		"truncated u64":      func(d *Decoder) error { _, err := d.U64(); return err },
		"truncated bytes":    func(d *Decoder) error { _, err := d.Bytes(); return err },
		"oversized declared": func(d *Decoder) error { _, err := d.Bytes(); return err },
		"bad bool":           func(d *Decoder) error { _, err := d.Bool(); return err },
		"non-minimal varint": func(d *Decoder) error { _, err := d.Uvarint(); return err },
	}
	inputs := map[string][]byte{
		"truncated uvarint":  {0x80},
		"truncated u64":      {1, 2, 3},
		"truncated bytes":    {5, 'a', 'b'},
		"oversized declared": {0xff, 0xff, 0xff, 0xff, 0x0f, 'x'},
		"bad bool":           {2},
		"non-minimal varint": {0x80, 0x00},
	}
	for name, read := range cases {
		d := NewDecoder(inputs[name])
		if err := read(&d); err == nil {
			t.Errorf("%s: decode succeeded on corrupt input", name)
		}
	}
	// A declared length larger than the input must fail before allocating.
	d := NewDecoder([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	if _, err := d.Bytes(); err == nil {
		t.Error("giant declared length accepted")
	}
}

func TestDoneRejectsTrailing(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if _, err := d.Byte(); err != nil {
		t.Fatal(err)
	}
	if err := d.Done(); err == nil {
		t.Fatal("Done accepted trailing bytes")
	}
}

func frameEqual(a, b *Frame) bool {
	return a.Kind == b.Kind && a.Flags == b.Flags && a.ReqID == b.ReqID &&
		a.Tag == b.Tag && a.From == b.From && a.TraceID == b.TraceID &&
		a.SpanID == b.SpanID && a.ErrMsg == b.ErrMsg && a.ErrCode == b.ErrCode &&
		bytes.Equal(a.Payload, b.Payload)
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte("payload-bytes")
	frames := []Frame{
		{Kind: KindRequest, ReqID: 1, Tag: 7, From: "127.0.0.1:9"},
		{Kind: KindRequest, Flags: FlagTraced, ReqID: 2, Tag: 7, From: "a:1",
			TraceID: "t-1", SpanID: "s-1"},
		{Kind: KindReply, ReqID: 3, Tag: 7},
		{Kind: KindReply, Flags: FlagError, ReqID: 4, ErrMsg: "boom", ErrCode: "x.y"},
		{Kind: KindRequest, Flags: FlagGob, ReqID: 5, From: "b:2"},
		{Kind: KindReply, ReqID: 6}, // nil payload
	}
	for i := range frames {
		f := frames[i]
		var pfn func([]byte) ([]byte, error)
		if f.Flags&FlagError == 0 && (f.Tag != 0 || f.Flags&FlagGob != 0) {
			f.Payload = payload
			pfn = func(dst []byte) ([]byte, error) { return append(dst, payload...), nil }
		}
		enc, err := AppendFrame(nil, &f, pfn)
		if err != nil {
			t.Fatalf("frame %d: encode: %v", i, err)
		}
		body, rest, err := ReadFrame(bytes.NewReader(enc), nil, nil)
		_ = rest
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		got, err := ParseFrame(body)
		if err != nil {
			t.Fatalf("frame %d: parse: %v", i, err)
		}
		if !frameEqual(&got, &f) {
			t.Errorf("frame %d mangled:\n got  %+v\n want %+v", i, got, f)
		}
	}
}

func TestParseFrameRejects(t *testing.T) {
	good, err := AppendFrame(nil, &Frame{Kind: KindRequest, ReqID: 9, Tag: 3, From: "a:1"},
		func(dst []byte) ([]byte, error) { return append(dst, 1, 2, 3), nil })
	if err != nil {
		t.Fatal(err)
	}
	body := good[4:] // strip length prefix

	mutate := func(mut func(b []byte)) []byte {
		c := append([]byte(nil), body...)
		mut(c)
		return c
	}
	bad := map[string][]byte{
		"short":            body[:5],
		"bad magic":        mutate(func(b []byte) { b[0] = 'X' }),
		"bad version":      mutate(func(b []byte) { b[2] = 99 }),
		"bad kind":         mutate(func(b []byte) { b[3] = 9 }),
		"unknown flags":    mutate(func(b []byte) { b[4] = 0x80 }),
		"error on request": mutate(func(b []byte) { b[4] = FlagError }),
	}
	for name, in := range bad {
		if _, err := ParseFrame(in); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Payload bytes on a payload-less frame (tag 0, no gob flag).
	nilFrame, err := AppendFrame(nil, &Frame{Kind: KindReply, ReqID: 1},
		func(dst []byte) ([]byte, error) { return append(dst, 0xaa), nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseFrame(nilFrame[4:]); err == nil {
		t.Error("payload on payload-less frame accepted")
	}
}

func TestReadFrameBounds(t *testing.T) {
	// Oversized declared length fails before allocation.
	var hdr [4]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := ReadFrame(bytes.NewReader(hdr[:]), nil, nil); !errors.Is(err, ErrOversized) {
		t.Errorf("oversized length: %v", err)
	}
	// Undersized declared length is malformed.
	small := []byte{0, 0, 0, 2, 'W', 'P'}
	if _, _, err := ReadFrame(bytes.NewReader(small), nil, nil); !errors.Is(err, ErrMalformed) {
		t.Errorf("undersized length: %v", err)
	}
	// Truncated body is an IO error.
	trunc := []byte{0, 0, 0, 20, 'W', 'P', 1}
	if _, _, err := ReadFrame(bytes.NewReader(trunc), nil, nil); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated body: %v", err)
	}
}

func TestAppendFrameRollsBackOversize(t *testing.T) {
	huge := strings.Repeat("x", MaxFrameSize)
	dst := []byte("prefix")
	out, err := AppendFrame(dst, &Frame{Kind: KindReply, ReqID: 1, Tag: 3},
		func(b []byte) ([]byte, error) { return append(b, huge...), nil })
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v", err)
	}
	if string(out) != "prefix" {
		t.Fatalf("partial frame not rolled back: %d bytes", len(out))
	}
}

func TestRegisterConflictsPanic(t *testing.T) {
	type msgA struct{ X int }
	type msgB struct{ X int }
	enc := func(dst []byte, v any) ([]byte, error) { return dst, nil }
	dec := func(d *Decoder) (any, error) { return msgA{}, nil }
	Register(9001, "wiretest.A", msgA{}, enc, dec)
	// Identical re-registration is a no-op.
	Register(9001, "wiretest.A", msgA{}, enc, dec)

	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	expectPanic("same name different type", func() {
		Register(9001, "wiretest.A", msgB{}, enc, dec)
	})
	expectPanic("same tag different name", func() {
		Register(9001, "wiretest.A2", msgB{}, enc, dec)
	})
	expectPanic("same type second identity", func() {
		Register(9002, "wiretest.A-again", msgA{}, enc, dec)
	})
	expectPanic("tag zero", func() {
		Register(0, "wiretest.zero", msgB{}, enc, dec)
	})
}

// TestEncodeSteadyStateAllocs holds the pooled-encode guarantee: with a
// warm buffer pool, framing a codec-backed message allocates nothing.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	type ping struct {
		A uint64
		B string
	}
	Register(9100, "wiretest.ping", ping{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(ping)
			dst = AppendU64(dst, m.A)
			return AppendString(dst, m.B), nil
		},
		func(d *Decoder) (any, error) {
			var m ping
			var err error
			if m.A, err = d.U64(); err != nil {
				return nil, err
			}
			if m.B, err = d.String(); err != nil {
				return nil, err
			}
			return m, nil
		})
	e, _ := ByTag(9100)
	var msg any = ping{A: 42, B: "steady-state"}
	f := Frame{Kind: KindRequest, ReqID: 1, Tag: e.Tag, From: "127.0.0.1:4242"}
	enc := func(dst []byte) ([]byte, error) { return e.Enc(dst, msg) }
	// Warm the pool so the measured runs reuse one buffer.
	PutBuf(GetBuf())
	allocs := testing.AllocsPerRun(1000, func() {
		buf := GetBuf()
		out, err := AppendFrame(buf, &f, enc)
		if err != nil {
			t.Fatal(err)
		}
		PutBuf(out)
	})
	if allocs > 0 {
		t.Errorf("steady-state encode allocates %.1f objects/op, want 0", allocs)
	}
}
