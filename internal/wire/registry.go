package wire

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"reflect"
	"sync"
)

// EncodeFunc appends the codec bytes for v (whose dynamic type is the
// registered one) to dst.
type EncodeFunc func(dst []byte, v any) ([]byte, error)

// DecodeFunc decodes one value from d. It must consume exactly the bytes
// its encoder produced; the caller verifies Done afterwards.
type DecodeFunc func(d *Decoder) (any, error)

// Entry is one registered wire type.
type Entry struct {
	Tag  uint64
	Name string
	Type reflect.Type
	Enc  EncodeFunc
	Dec  DecodeFunc
}

// The registry is written during package inits and read on every encoded
// call, so reads go through an RWMutex (contention-free in practice: the
// write side goes quiet once the process is up).
var (
	regMu     sync.RWMutex
	regByTag  = map[uint64]*Entry{}
	regByType = map[reflect.Type]*Entry{}
	regByName = map[string]*Entry{}
)

// Register installs the codec for prototype's type under tag and name.
// Tags and names are part of the wire contract: both peers must agree, so
// they are assigned explicitly where the protocol packages register their
// messages (never derived from Go type identity, which refactors change).
//
// Re-registering the identical (tag, name, type) triple is a no-op, so
// idempotent init paths stay cheap. Any divergent duplicate — the same
// name or tag bound to a different type, or the same type under a second
// identity — panics immediately with the conflict spelled out: a silent
// overwrite here would make two nodes disagree on what a tag means, which
// is wire corruption, not a recoverable error.
func Register(tag uint64, name string, prototype any, enc EncodeFunc, dec DecodeFunc) {
	if tag == 0 {
		panic("wire: tag 0 is reserved for untyped payloads")
	}
	if name == "" || prototype == nil || enc == nil || dec == nil {
		panic("wire: Register needs a name, prototype, encoder, and decoder")
	}
	t := reflect.TypeOf(prototype)
	regMu.Lock()
	defer regMu.Unlock()
	if e, ok := regByName[name]; ok {
		if e.Tag == tag && e.Type == t {
			return // idempotent re-registration
		}
		panic(fmt.Sprintf("wire: duplicate registration of %q: already tag %d type %v, now tag %d type %v",
			name, e.Tag, e.Type, tag, t))
	}
	if e, ok := regByTag[tag]; ok {
		panic(fmt.Sprintf("wire: tag %d already registered as %q (%v), cannot reuse for %q (%v)",
			tag, e.Name, e.Type, name, t))
	}
	if e, ok := regByType[t]; ok {
		panic(fmt.Sprintf("wire: type %v already registered as %q (tag %d), cannot re-register as %q (tag %d)",
			t, e.Name, e.Tag, name, tag))
	}
	e := &Entry{Tag: tag, Name: name, Type: t, Enc: enc, Dec: dec}
	regByTag[tag] = e
	regByType[t] = e
	regByName[name] = e
}

// ByTag returns the codec registered under tag.
func ByTag(tag uint64) (*Entry, bool) {
	regMu.RLock()
	e, ok := regByTag[tag]
	regMu.RUnlock()
	return e, ok
}

// ByValue returns the codec registered for v's dynamic type.
func ByValue(v any) (*Entry, bool) {
	if v == nil {
		return nil, false
	}
	t := reflect.TypeOf(v)
	regMu.RLock()
	e, ok := regByType[t]
	regMu.RUnlock()
	return e, ok
}

// Entries returns every registered codec, for parity and fuzz suites.
func Entries() []*Entry {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]*Entry, 0, len(regByTag))
	for _, e := range regByTag {
		out = append(out, e)
	}
	return out
}

// Decode decodes a tagged payload: the registered codec runs, then the
// input must be exactly consumed — trailing bytes mean a type-confused or
// corrupt frame and are rejected.
func Decode(tag uint64, payload []byte) (any, error) {
	e, ok := ByTag(tag)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
	}
	d := NewDecoder(payload)
	v, err := e.Dec(&d)
	if err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", e.Name, err)
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("wire: decoding %s: %w", e.Name, err)
	}
	return v, nil
}

// EncodeGob gob-encodes v as a self-contained stream (type descriptors
// included) — the payload form for types with no registered codec. The
// concrete type must have been registered with encoding/gob.
func EncodeGob(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeGob decodes a self-contained gob payload produced by EncodeGob.
func DecodeGob(b []byte) (any, error) {
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// Nested any-valued fields (e.g. the indirection layer's forwarded inner
// message) encode as a one-byte shape marker followed by the value.
const (
	anyNil    = 0 // no value
	anyGob    = 1 // uvarint-prefixed self-contained gob stream
	anyTagged = 2 // uvarint tag + codec payload, inline
)

// AppendAny appends an any-valued field: nil, a registered type via its
// codec, or a gob fallback for everything else.
func AppendAny(dst []byte, v any) ([]byte, error) {
	if v == nil {
		return append(dst, anyNil), nil
	}
	if e, ok := ByValue(v); ok {
		dst = append(dst, anyTagged)
		dst = AppendUvarint(dst, e.Tag)
		return e.Enc(dst, v)
	}
	gb, err := EncodeGob(v)
	if err != nil {
		return dst, err
	}
	dst = append(dst, anyGob)
	return AppendBytes(dst, gb), nil
}

// Any reads a field written by AppendAny.
func (d *Decoder) Any() (any, error) {
	marker, err := d.Byte()
	if err != nil {
		return nil, err
	}
	switch marker {
	case anyNil:
		return nil, nil
	case anyGob:
		gb, err := d.Bytes()
		if err != nil {
			return nil, err
		}
		return DecodeGob(gb)
	case anyTagged:
		tag, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		e, ok := ByTag(tag)
		if !ok {
			return nil, fmt.Errorf("%w: %d", ErrUnknownTag, tag)
		}
		v, err := e.Dec(d)
		if err != nil {
			return nil, fmt.Errorf("wire: decoding nested %s: %w", e.Name, err)
		}
		return v, nil
	default:
		return nil, fmt.Errorf("%w: bad any marker 0x%02x", ErrMalformed, marker)
	}
}
