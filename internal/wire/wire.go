// Package wire implements WhoPay's hand-rolled binary wire codec: the
// length-prefixed frame format the TCP transport speaks (see PROTOCOL.md,
// "Wire format") and the fixed-layout encoders for the protocol's hot
// message types.
//
// gob served the first six PRs well, but it pays reflection on both ends of
// every hop and re-transmits type descriptors on every short-lived
// connection — exactly the per-message overhead the paper's real-time
// double-spend checks (§5) and scalability analysis (§6) require to stay
// cheap. This package replaces it on the hot path with explicit per-type
// encoders registered under small integer tags: varint ints, length-
// prefixed byte strings, no reflection, and pooled encode buffers so a
// steady-state encode allocates nothing. gob remains the negotiated
// fallback — both for whole connections (a peer running an older build) and
// for individual payloads whose type has no registered codec.
//
// Decoding is defensive by construction: every length is bounds-checked
// against the remaining input before any allocation, so truncated, corrupt,
// oversized, or type-confused frames error out without panicking or
// over-allocating (fuzz_test.go holds that line).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// Errors returned by decoders.
var (
	// ErrTruncated is returned when the input ends before a declared field.
	ErrTruncated = errors.New("wire: truncated input")
	// ErrMalformed is returned for structurally invalid input.
	ErrMalformed = errors.New("wire: malformed input")
	// ErrOversized is returned for frames exceeding MaxFrameSize.
	ErrOversized = errors.New("wire: frame exceeds size limit")
	// ErrUnknownTag is returned when no codec is registered for a type tag.
	ErrUnknownTag = errors.New("wire: unknown type tag")
)

// Append helpers: the encode side of the codec. All of them append to dst
// and return the extended slice, so encoders compose without intermediate
// allocations.

// AppendUvarint appends v in unsigned varint encoding.
func AppendUvarint(dst []byte, v uint64) []byte {
	return binary.AppendUvarint(dst, v)
}

// AppendInt appends v in zigzag varint encoding (small magnitudes of either
// sign stay short).
func AppendInt(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendU64 appends v as 8 fixed big-endian bytes (sequence numbers and
// request IDs, where varint would leak length side-channels into framing).
func AppendU64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

// AppendBytes appends a uvarint length prefix followed by b.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendString appends a uvarint length prefix followed by s.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBool appends one byte: 1 for true, 0 for false.
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// AppendRaw appends b with no length prefix (fixed-width fields whose
// length both sides know, e.g. 32-byte ring keys).
func AppendRaw(dst, b []byte) []byte { return append(dst, b...) }

// Decoder consumes a fully buffered encoded value. It is a value type;
// methods take a pointer so position advances. Every read bounds-checks
// before touching (or allocating for) the input.
type Decoder struct {
	buf []byte
	off int
}

// NewDecoder returns a decoder over b. The decoder does not copy b; byte-
// and string-valued reads copy out of it, so b may be reused once decoding
// finishes.
func NewDecoder(b []byte) Decoder { return Decoder{buf: b} }

// Len reports how many bytes remain.
func (d *Decoder) Len() int { return len(d.buf) - d.off }

// Done verifies the input was consumed exactly: trailing bytes mean the
// payload does not match the codec that decoded it.
func (d *Decoder) Done() error {
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.buf)-d.off)
	}
	return nil
}

// Uvarint reads an unsigned varint. Non-minimal encodings (a value padded
// with continuation bytes, e.g. 0x80 0x00 for zero) are rejected so every
// value has exactly one wire form — decode→re-encode is byte-identical,
// and an attacker cannot mint distinct byte strings for the same message.
func (d *Decoder) Uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		if n == 0 {
			return 0, ErrTruncated
		}
		return 0, fmt.Errorf("%w: uvarint overflow", ErrMalformed)
	}
	if n > 1 && v>>(7*(n-1)) == 0 {
		return 0, fmt.Errorf("%w: non-minimal uvarint", ErrMalformed)
	}
	d.off += n
	return v, nil
}

// Int reads a zigzag varint (minimal encoding enforced, as Uvarint).
func (d *Decoder) Int() (int64, error) {
	u, err := d.Uvarint()
	if err != nil {
		return 0, err
	}
	return int64(u>>1) ^ -int64(u&1), nil
}

// U64 reads 8 fixed big-endian bytes.
func (d *Decoder) U64() (uint64, error) {
	if d.Len() < 8 {
		return 0, ErrTruncated
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

// Byte reads one byte.
func (d *Decoder) Byte() (byte, error) {
	if d.Len() < 1 {
		return 0, ErrTruncated
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

// Bool reads one strict boolean byte (anything but 0/1 is malformed, so a
// flipped bit cannot silently become "true").
func (d *Decoder) Bool() (bool, error) {
	b, err := d.Byte()
	if err != nil {
		return false, err
	}
	switch b {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bad bool byte 0x%02x", ErrMalformed, b)
	}
}

// Bytes reads a length-prefixed byte string into a fresh slice. A zero
// length decodes as nil — matching gob, which omits empty slices entirely —
// so wire and gob round trips agree field-for-field. The declared length is
// checked against the remaining input before allocating, so a corrupt
// prefix cannot trigger a huge allocation.
func (d *Decoder) Bytes() ([]byte, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(d.Len()) {
		return nil, fmt.Errorf("%w: declared %d bytes, %d remain", ErrTruncated, n, d.Len())
	}
	out := make([]byte, n)
	copy(out, d.buf[d.off:])
	d.off += int(n)
	return out, nil
}

// String reads a length-prefixed string.
func (d *Decoder) String() (string, error) {
	n, err := d.Uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(d.Len()) {
		return "", fmt.Errorf("%w: declared %d bytes, %d remain", ErrTruncated, n, d.Len())
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// Fixed fills out (a fixed-width field) from the input without allocating.
func (d *Decoder) Fixed(out []byte) error {
	if d.Len() < len(out) {
		return ErrTruncated
	}
	copy(out, d.buf[d.off:])
	d.off += len(out)
	return nil
}

// Encode buffer pool: Call/reply encoding runs get → append → write →
// put, so steady-state encodes allocate nothing. Oversized buffers are
// dropped rather than pooled, so one huge message cannot pin memory.

const (
	pooledBufCap    = 4 << 10
	maxPooledBufCap = 1 << 20
)

var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, pooledBufCap)
		return &b
	},
}

// hdrPool recycles the *[]byte boxes bufPool shuttles around: without it,
// every PutBuf would heap-allocate a fresh slice header to escape into the
// pool, costing exactly the one allocation per encode the pool exists to
// avoid.
var hdrPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// GetBuf returns an empty pooled buffer.
func GetBuf() []byte {
	p := bufPool.Get().(*[]byte)
	b := (*p)[:0]
	*p = nil
	hdrPool.Put(p)
	return b
}

// PutBuf returns a buffer obtained from GetBuf to the pool.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBufCap {
		return
	}
	p := hdrPool.Get().(*[]byte)
	*p = b[:0]
	bufPool.Put(p)
}
