package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Frame layout (PROTOCOL.md, "Wire format"). Every frame is
//
//	u32 length        big-endian byte count of everything after it
//	u16 magic         0x5750 ("WP")
//	u8  version       1
//	u8  kind          request / reply
//	u8  flags         traced / gob payload / error reply
//	u64 reqID         big-endian; pairs replies with requests on a mux
//	uvarint tag       registered type tag; 0 = nil payload or gob payload
//	[kind=request]    from address  (uvarint-prefixed string)
//	[flags&Traced]    trace ID, span ID  (uvarint-prefixed strings)
//	[flags&Error]     error message, error code  (uvarint-prefixed strings)
//	payload           codec bytes for tag, or a self-contained gob stream
//
// A connection speaking this protocol opens with the 4-byte Preamble; its
// leading zero byte can never begin a gob stream (gob messages carry a
// non-zero uvarint byte count first), which is what lets a listener sniff
// framed peers apart from legacy gob peers on the first byte.

// Version is the frame-format version carried in the preamble and every
// frame header.
const Version = 1

// Preamble opens every framed connection. The leading 0x00 is the
// discriminator against gob; "WP" echoes the per-frame magic.
var Preamble = [4]byte{0x00, 'W', 'P', Version}

const (
	frameMagic0 = 'W'
	frameMagic1 = 'P'

	// lenSize is the width of the leading length field.
	lenSize = 4
	// minFrameSize is the smallest legal post-length frame: magic(2) +
	// version(1) + kind(1) + flags(1) + reqID(8) + tag(>=1).
	minFrameSize = 14
)

// MaxFrameSize bounds one frame (excluding the length field). The limit is
// checked before the frame body is allocated, so a corrupt or hostile
// length prefix cannot trigger a giant allocation.
const MaxFrameSize = 16 << 20

// Frame kinds.
const (
	// KindRequest frames carry a request toward a listener.
	KindRequest = 1
	// KindReply frames carry the response for ReqID back to the caller.
	KindReply = 2
)

// Frame flags.
const (
	// FlagTraced marks frames carrying obs trace identity.
	FlagTraced = 1 << 0
	// FlagGob marks payloads encoded with gob (no registered codec).
	FlagGob = 1 << 1
	// FlagError marks replies carrying an error instead of a payload.
	FlagError = 1 << 2

	knownFlags = FlagTraced | FlagGob | FlagError
)

// Frame is one parsed (or to-be-encoded) frame. Payload aliases the parse
// input; copy it before reusing the buffer.
type Frame struct {
	Kind  byte
	Flags byte
	ReqID uint64
	Tag   uint64

	// From is the caller's listen address (requests only).
	From string
	// TraceID/SpanID are the obs trace identity (FlagTraced).
	TraceID, SpanID string
	// ErrMsg/ErrCode carry a remote error (replies with FlagError).
	ErrMsg, ErrCode string

	Payload []byte
}

// AppendFrame appends the complete length-prefixed frame for f to dst,
// invoking payload (when non-nil) to append the payload bytes in place.
// On payload error the partial frame is rolled back.
func AppendFrame(dst []byte, f *Frame, payload func([]byte) ([]byte, error)) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // length, patched below
	dst = append(dst, frameMagic0, frameMagic1, Version, f.Kind, f.Flags)
	dst = binary.BigEndian.AppendUint64(dst, f.ReqID)
	dst = binary.AppendUvarint(dst, f.Tag)
	if f.Kind == KindRequest {
		dst = AppendString(dst, f.From)
	}
	if f.Flags&FlagTraced != 0 {
		dst = AppendString(dst, f.TraceID)
		dst = AppendString(dst, f.SpanID)
	}
	if f.Flags&FlagError != 0 {
		dst = AppendString(dst, f.ErrMsg)
		dst = AppendString(dst, f.ErrCode)
	}
	if payload != nil {
		var err error
		if dst, err = payload(dst); err != nil {
			return dst[:start], err
		}
	}
	n := len(dst) - start - lenSize
	if n > MaxFrameSize {
		return dst[:start], fmt.Errorf("%w: %d bytes", ErrOversized, n)
	}
	binary.BigEndian.PutUint32(dst[start:], uint32(n))
	return dst, nil
}

// ParseFrame parses one frame body (the bytes after the length field). The
// returned Frame's Payload aliases body; header strings are copied.
func ParseFrame(body []byte) (Frame, error) {
	var f Frame
	if len(body) < minFrameSize {
		return f, fmt.Errorf("%w: %d-byte frame", ErrTruncated, len(body))
	}
	if body[0] != frameMagic0 || body[1] != frameMagic1 {
		return f, fmt.Errorf("%w: bad magic 0x%02x%02x", ErrMalformed, body[0], body[1])
	}
	if body[2] != Version {
		return f, fmt.Errorf("%w: unsupported frame version %d", ErrMalformed, body[2])
	}
	f.Kind = body[3]
	if f.Kind != KindRequest && f.Kind != KindReply {
		return f, fmt.Errorf("%w: unknown frame kind %d", ErrMalformed, f.Kind)
	}
	f.Flags = body[4]
	if f.Flags&^byte(knownFlags) != 0 {
		return f, fmt.Errorf("%w: unknown flags 0x%02x", ErrMalformed, f.Flags)
	}
	if f.Flags&FlagError != 0 && f.Kind != KindReply {
		return f, fmt.Errorf("%w: error flag on request", ErrMalformed)
	}
	d := NewDecoder(body[5:])
	var err error
	if f.ReqID, err = d.U64(); err != nil {
		return f, err
	}
	if f.Tag, err = d.Uvarint(); err != nil {
		return f, err
	}
	if f.Kind == KindRequest {
		if f.From, err = d.String(); err != nil {
			return f, fmt.Errorf("from address: %w", err)
		}
	}
	if f.Flags&FlagTraced != 0 {
		if f.TraceID, err = d.String(); err != nil {
			return f, fmt.Errorf("trace id: %w", err)
		}
		if f.SpanID, err = d.String(); err != nil {
			return f, fmt.Errorf("span id: %w", err)
		}
	}
	if f.Flags&FlagError != 0 {
		if f.ErrMsg, err = d.String(); err != nil {
			return f, fmt.Errorf("error message: %w", err)
		}
		if f.ErrCode, err = d.String(); err != nil {
			return f, fmt.Errorf("error code: %w", err)
		}
	}
	f.Payload = d.buf[d.off:]
	// A frame that declares no payload must carry none: tag 0 without the
	// gob flag means nil, and error replies carry the error fields alone.
	if (f.Flags&FlagError != 0 || (f.Tag == 0 && f.Flags&FlagGob == 0)) && len(f.Payload) > 0 {
		return f, fmt.Errorf("%w: %d payload bytes on a payload-less frame", ErrMalformed, len(f.Payload))
	}
	return f, nil
}

// ReadFrame reads one length-prefixed frame body from r into scratch
// (grown as needed) and returns the body slice plus the (possibly grown)
// scratch for reuse. onBody, when non-nil, runs after the length is known
// and before the body is read — transports hook per-phase read deadlines
// there. The length is validated against MaxFrameSize before any
// allocation.
func ReadFrame(r io.Reader, scratch []byte, onBody func(n int)) (body, newScratch []byte, err error) {
	var lenBuf [lenSize]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, scratch, err
	}
	n := int(binary.BigEndian.Uint32(lenBuf[:]))
	if n > MaxFrameSize {
		return nil, scratch, fmt.Errorf("%w: declared %d bytes", ErrOversized, n)
	}
	if n < minFrameSize {
		return nil, scratch, fmt.Errorf("%w: declared %d bytes", ErrMalformed, n)
	}
	if cap(scratch) < n {
		scratch = make([]byte, n)
	}
	scratch = scratch[:cap(scratch)]
	if onBody != nil {
		onBody(n)
	}
	if _, err := io.ReadFull(r, scratch[:n]); err != nil {
		return nil, scratch, err
	}
	return scratch[:n], scratch, nil
}
