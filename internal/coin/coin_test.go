package coin

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"whopay/internal/sig"
)

var testTime = time.Unix(1_700_000_000, 0)

func testSetup(t *testing.T) (sig.Suite, sig.KeyPair, sig.KeyPair) {
	t.Helper()
	suite := sig.Suite{Scheme: sig.NewNull(300)}
	broker, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	coinKey, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	return suite, broker, coinKey
}

func mintCoin(t *testing.T, suite sig.Suite, broker, coinKey sig.KeyPair, owner string) *Coin {
	t.Helper()
	c := &Coin{Owner: owner, Pub: coinKey.Public.Clone(), Value: 1}
	var err error
	c.Sig, err = suite.Sign(broker.Private, c.Message())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCoinVerify(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	c := mintCoin(t, suite, broker, coinKey, "alice")
	if err := c.Verify(suite, broker.Public); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if c.Anonymous() {
		t.Fatal("owned coin reported anonymous")
	}
	if c.ID().Pub().String() != coinKey.Public.String() {
		t.Fatal("ID round trip failed")
	}
}

func TestCoinTamperDetection(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	base := mintCoin(t, suite, broker, coinKey, "alice")
	tests := map[string]func(*Coin){
		"owner":  func(c *Coin) { c.Owner = "mallory" },
		"value":  func(c *Coin) { c.Value = 1000 },
		"pub":    func(c *Coin) { c.Pub[0] ^= 0xff },
		"handle": func(c *Coin) { c.Handle = []byte{1} },
	}
	for name, mutate := range tests {
		t.Run(name, func(t *testing.T) {
			c := base.Clone()
			mutate(c)
			if err := c.Verify(suite, broker.Public); !errors.Is(err, ErrBadCoin) {
				t.Fatalf("got %v, want ErrBadCoin", err)
			}
		})
	}
}

func TestCoinStructuralValidation(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	c := mintCoin(t, suite, broker, coinKey, "alice")
	c.Value = 0
	if err := c.Verify(suite, broker.Public); !errors.Is(err, ErrBadCoin) {
		t.Fatalf("zero value = %v, want ErrBadCoin", err)
	}
	empty := &Coin{Value: 1}
	if err := empty.Verify(suite, broker.Public); !errors.Is(err, ErrBadCoin) {
		t.Fatalf("empty key = %v, want ErrBadCoin", err)
	}
}

func TestAnonymousCoin(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	c := &Coin{Handle: []byte("handle-key"), Pub: coinKey.Public, Value: 1}
	var err error
	c.Sig, err = suite.Sign(broker.Private, c.Message())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Anonymous() {
		t.Fatal("anonymous coin not detected")
	}
	if err := c.Verify(suite, broker.Public); err != nil {
		t.Fatal(err)
	}
}

func signBinding(t *testing.T, suite sig.Suite, signer sig.PrivateKey, b *Binding) *Binding {
	t.Helper()
	var err error
	b.Sig, err = suite.Sign(signer, b.Message())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBindingByCoinKey(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	holder, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := signBinding(t, suite, coinKey.Private, &Binding{
		CoinPub: coinKey.Public,
		Holder:  holder.Public,
		Seq:     7,
		Expiry:  testTime.Add(72 * time.Hour).Unix(),
	})
	if err := b.Verify(suite, broker.Public, testTime); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestBindingByBroker(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	holder, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := signBinding(t, suite, broker.Private, &Binding{
		CoinPub:  coinKey.Public,
		Holder:   holder.Public,
		Seq:      8,
		Expiry:   testTime.Add(72 * time.Hour).Unix(),
		ByBroker: true,
	})
	if err := b.Verify(suite, broker.Public, testTime); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	// The same binding claimed as coin-key-signed must fail: the flag is
	// part of the signed message.
	b2 := b.Clone()
	b2.ByBroker = false
	if err := b2.Verify(suite, broker.Public, testTime); !errors.Is(err, ErrBadBinding) {
		t.Fatalf("flag flip = %v, want ErrBadBinding", err)
	}
}

func TestBindingExpiry(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	holder, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := signBinding(t, suite, coinKey.Private, &Binding{
		CoinPub: coinKey.Public,
		Holder:  holder.Public,
		Seq:     1,
		Expiry:  testTime.Add(-time.Hour).Unix(),
	})
	if err := b.Verify(suite, broker.Public, testTime); !errors.Is(err, ErrExpired) {
		t.Fatalf("got %v, want ErrExpired", err)
	}
	// Zero time skips the expiry check (historical evidence).
	if err := b.Verify(suite, broker.Public, time.Time{}); err != nil {
		t.Fatalf("zero-time verify: %v", err)
	}
}

func TestBindingTamperDetection(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	holder, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Binding {
		return signBinding(t, suite, coinKey.Private, &Binding{
			CoinPub: coinKey.Public,
			Holder:  holder.Public,
			Seq:     3,
			Expiry:  testTime.Add(72 * time.Hour).Unix(),
		})
	}
	tests := map[string]func(*Binding){
		"seq":    func(b *Binding) { b.Seq++ },
		"holder": func(b *Binding) { b.Holder[0] ^= 1 },
		"expiry": func(b *Binding) { b.Expiry += 3600 },
	}
	for name, mutate := range tests {
		t.Run(name, func(t *testing.T) {
			b := mk()
			mutate(b)
			if err := b.Verify(suite, broker.Public, testTime); !errors.Is(err, ErrBadBinding) {
				t.Fatalf("got %v, want ErrBadBinding", err)
			}
		})
	}
}

func TestVerifyForPinsCoin(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	c := mintCoin(t, suite, broker, coinKey, "alice")
	otherKey, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	holder, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := signBinding(t, suite, otherKey.Private, &Binding{
		CoinPub: otherKey.Public,
		Holder:  holder.Public,
		Seq:     1,
		Expiry:  testTime.Add(time.Hour).Unix(),
	})
	if err := b.VerifyFor(suite, c, broker.Public, testTime); !errors.Is(err, ErrWrongCoin) {
		t.Fatalf("got %v, want ErrWrongCoin", err)
	}
}

func TestBindingEqual(t *testing.T) {
	suite, _, coinKey := testSetup(t)
	holder, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	b := signBinding(t, suite, coinKey.Private, &Binding{
		CoinPub: coinKey.Public, Holder: holder.Public, Seq: 1, Expiry: 99,
	})
	if !b.Equal(b.Clone()) {
		t.Fatal("clone not Equal")
	}
	mut := b.Clone()
	mut.Seq++
	if b.Equal(mut) {
		t.Fatal("Equal missed a seq change")
	}
	var nilB *Binding
	if nilB.Equal(b) || b.Equal(nil) {
		t.Fatal("nil comparisons wrong")
	}
	if !nilB.Equal(nil) {
		t.Fatal("nil/nil should be equal")
	}
}

func TestTransferBodyMessageUnambiguous(t *testing.T) {
	// Field-boundary ambiguity check: moving a byte between adjacent
	// variable-length fields must change the message.
	a := &TransferBody{CoinPub: sig.PublicKey("AB"), NewHolder: sig.PublicKey("C"), Nonce: []byte("n")}
	b := &TransferBody{CoinPub: sig.PublicKey("A"), NewHolder: sig.PublicKey("BC"), Nonce: []byte("n")}
	if string(a.Message()) == string(b.Message()) {
		t.Fatal("encoding is ambiguous across field boundaries")
	}
}

func TestMessagesDomainSeparated(t *testing.T) {
	// A coin message must never collide with a binding or challenge
	// message even with adversarial field contents.
	c := &Coin{Owner: "x", Pub: sig.PublicKey("k"), Value: 1}
	b := &Binding{CoinPub: sig.PublicKey("k"), Holder: sig.PublicKey("x"), Seq: 1}
	ch := ChallengeMessage(sig.PublicKey("k"), []byte("x"))
	msgs := [][]byte{c.Message(), b.Message(), ch}
	for i := range msgs {
		for j := i + 1; j < len(msgs); j++ {
			if string(msgs[i]) == string(msgs[j]) {
				t.Fatalf("messages %d and %d collide", i, j)
			}
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	suite, broker, coinKey := testSetup(t)
	c := mintCoin(t, suite, broker, coinKey, "alice")
	clone := c.Clone()
	clone.Sig[0] ^= 0xff
	clone.Pub[0] ^= 0xff
	if err := c.Verify(suite, broker.Public); err != nil {
		t.Fatalf("mutating clone corrupted original: %v", err)
	}
}

// TestBindingMessageInjective: distinct (seq, expiry, byBroker) triples give
// distinct messages.
func TestBindingMessageInjective(t *testing.T) {
	f := func(seq1, seq2 uint64, exp1, exp2 int64, bb1, bb2 bool) bool {
		b1 := &Binding{CoinPub: sig.PublicKey("c"), Holder: sig.PublicKey("h"), Seq: seq1, Expiry: exp1, ByBroker: bb1}
		b2 := &Binding{CoinPub: sig.PublicKey("c"), Holder: sig.PublicKey("h"), Seq: seq2, Expiry: exp2, ByBroker: bb2}
		same := seq1 == seq2 && exp1 == exp2 && bb1 == bb2
		return (string(b1.Message()) == string(b2.Message())) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
