package coin

import (
	"bytes"
	"testing"

	"whopay/internal/sig"
)

// FuzzUnmarshalBinding exercises the one parser that consumes bytes from
// untrusted sources (DHT record values). It must never panic, and anything
// it accepts must re-marshal to the same bytes (canonical form).
func FuzzUnmarshalBinding(f *testing.F) {
	seed := (&Binding{
		CoinPub:  sig.PublicKey("coin-key"),
		Holder:   sig.PublicKey("holder"),
		Seq:      7,
		Expiry:   1_700_000_000,
		ByBroker: true,
		Sig:      []byte("sig"),
	}).Marshal()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add(seed[:len(seed)-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBinding(data)
		if err != nil {
			return
		}
		if !bytes.Equal(b.Marshal(), data) {
			t.Fatalf("accepted non-canonical encoding: %x", data)
		}
	})
}
