package coin

import (
	"bytes"
	"testing"
	"testing/quick"

	"whopay/internal/sig"
)

func TestBindingMarshalRoundTrip(t *testing.T) {
	b := &Binding{
		CoinPub:  sig.PublicKey("coin-key"),
		Holder:   sig.PublicKey("holder-key"),
		Seq:      42,
		Expiry:   1_700_000_999,
		ByBroker: true,
		Sig:      []byte("signature-bytes"),
	}
	got, err := UnmarshalBinding(b.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(b) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
	}
}

// TestBindingMarshalProperty: arbitrary field contents round-trip exactly.
func TestBindingMarshalProperty(t *testing.T) {
	f := func(coinPub, holder, sigBytes []byte, seq uint64, expiry int64, byBroker bool) bool {
		b := &Binding{
			CoinPub:  sig.PublicKey(coinPub),
			Holder:   sig.PublicKey(holder),
			Seq:      seq,
			Expiry:   expiry,
			ByBroker: byBroker,
			Sig:      sigBytes,
		}
		got, err := UnmarshalBinding(b.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(got.CoinPub, b.CoinPub) &&
			bytes.Equal(got.Holder, b.Holder) &&
			bytes.Equal(got.Sig, b.Sig) &&
			got.Seq == b.Seq && got.Expiry == b.Expiry && got.ByBroker == b.ByBroker
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalGarbage: malformed inputs error instead of panicking.
func TestUnmarshalGarbage(t *testing.T) {
	good := (&Binding{
		CoinPub: sig.PublicKey("c"), Holder: sig.PublicKey("h"),
		Seq: 1, Expiry: 2, Sig: []byte("s"),
	}).Marshal()
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      good[:len(good)/2],
		"trailing":       append(append([]byte{}, good...), 0xFF),
		"huge length":    {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		"bad flag":       corruptFlag(good),
		"single byte":    {7},
		"only varint":    {2},
		"negative-style": {0x80},
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := UnmarshalBinding(data); err == nil {
				t.Fatalf("accepted %q", name)
			}
		})
	}
}

// TestUnmarshalFuzzSafety: random byte strings never panic.
func TestUnmarshalFuzzSafety(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = UnmarshalBinding(data) // must not panic
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func corruptFlag(good []byte) []byte {
	out := append([]byte{}, good...)
	// The flag byte sits 17 bytes before the signature field; locate it
	// from the back: sig = len-prefix(1) + 1 byte here, so flag is at
	// len-3 for this fixture.
	if len(out) >= 3 {
		out[len(out)-3] = 9
	}
	return out
}
