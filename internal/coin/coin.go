// Package coin defines WhoPay's coin representation (paper Section 4).
//
// A coin IS a public key: the broker certifies `C = {U, pkC}skB` at
// purchase. Possession is conveyed by bindings `{pkC, pkCH, seq, exp}`:
// whoever knows the private key behind the bound holder key pkCH is the
// current holder. Bindings are signed by the coin's own key skC (only the
// owner knows it) or by the broker during owner downtime, and carry a
// strictly increasing sequence number.
//
// All signed structures use a deterministic length-prefixed binary encoding
// (never gob/json, whose output is not canonical) so signatures verify
// bit-for-bit across transports.
package coin

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"whopay/internal/sig"
)

// Errors returned by verification helpers.
var (
	// ErrBadCoin is returned when a coin's broker signature is invalid.
	ErrBadCoin = errors.New("coin: invalid broker signature on coin")
	// ErrBadBinding is returned when a binding's signature is invalid.
	ErrBadBinding = errors.New("coin: invalid binding signature")
	// ErrWrongCoin is returned when a binding references another coin.
	ErrWrongCoin = errors.New("coin: binding is for a different coin")
	// ErrExpired is returned when a binding is past its expiry.
	ErrExpired = errors.New("coin: binding expired")
)

// ID identifies a coin: the raw bytes of its public key, as a string so it
// can key maps. The paper: "coins are identified by public keys, rather
// than serial numbers".
type ID string

// Pub recovers the coin public key from an ID.
func (id ID) Pub() sig.PublicKey { return sig.PublicKey(id) }

// String renders a short fingerprint for logs.
func (id ID) String() string { return sig.PublicKey(id).String() }

// Coin is the broker-signed birth certificate of a coin.
//
// Owner is the purchasing peer's identity; it is empty for owner-anonymous
// coins (paper Section 5.2, third approach), in which case Handle carries
// the i3-style indirection handle used to reach the owner and ownership is
// proven by knowledge of the coin private key instead of the owner identity
// key.
type Coin struct {
	Owner  string
	Handle []byte
	Pub    sig.PublicKey
	Value  int64
	Sig    []byte
}

// ID returns the coin's identifier.
func (c *Coin) ID() ID { return ID(c.Pub) }

// Anonymous reports whether the coin hides its owner.
func (c *Coin) Anonymous() bool { return c.Owner == "" }

// Message returns the canonical bytes the broker signs.
func (c *Coin) Message() []byte {
	var b []byte
	b = append(b, "whopay/coin/1"...)
	b = appendBytes(b, []byte(c.Owner))
	b = appendBytes(b, c.Handle)
	b = appendBytes(b, c.Pub)
	b = binary.BigEndian.AppendUint64(b, uint64(c.Value))
	return b
}

// Verify checks the broker's signature.
func (c *Coin) Verify(suite sig.Suite, brokerPub sig.PublicKey) error {
	if len(c.Pub) == 0 {
		return fmt.Errorf("%w: empty coin key", ErrBadCoin)
	}
	if c.Value <= 0 {
		return fmt.Errorf("%w: non-positive value", ErrBadCoin)
	}
	if err := suite.Verify(brokerPub, c.Message(), c.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadCoin, err)
	}
	return nil
}

// Clone returns a deep copy.
func (c *Coin) Clone() *Coin {
	out := *c
	out.Handle = append([]byte(nil), c.Handle...)
	out.Pub = c.Pub.Clone()
	out.Sig = append([]byte(nil), c.Sig...)
	return &out
}

// Binding states that coin CoinPub is currently represented by holder key
// Holder, with sequence Seq and expiry Expiry (unix seconds). ByBroker
// marks bindings signed by the broker during owner downtime; otherwise the
// binding is signed by the coin key itself.
type Binding struct {
	CoinPub  sig.PublicKey
	Holder   sig.PublicKey
	Seq      uint64
	Expiry   int64
	ByBroker bool
	Sig      []byte
}

// Message returns the canonical bytes the coin key (or broker) signs.
func (b *Binding) Message() []byte {
	var out []byte
	out = append(out, "whopay/binding/1"...)
	out = appendBytes(out, b.CoinPub)
	out = appendBytes(out, b.Holder)
	out = binary.BigEndian.AppendUint64(out, b.Seq)
	out = binary.BigEndian.AppendUint64(out, uint64(b.Expiry))
	if b.ByBroker {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// Verify checks the binding's signature: against the broker key when
// ByBroker, against the coin's own key otherwise. now bounds the expiry
// check; pass the zero time to skip it (e.g. when inspecting historical
// evidence).
func (b *Binding) Verify(suite sig.Suite, brokerPub sig.PublicKey, now time.Time) error {
	signer := sig.PublicKey(b.CoinPub)
	if b.ByBroker {
		signer = brokerPub
	}
	if err := suite.Verify(signer, b.Message(), b.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadBinding, err)
	}
	if !now.IsZero() && now.Unix() > b.Expiry {
		return fmt.Errorf("%w: expired %s", ErrExpired, time.Unix(b.Expiry, 0).UTC())
	}
	return nil
}

// VerifyFor additionally pins the binding to a specific coin.
func (b *Binding) VerifyFor(suite sig.Suite, c *Coin, brokerPub sig.PublicKey, now time.Time) error {
	if !c.Pub.Equal(sig.PublicKey(b.CoinPub)) {
		return ErrWrongCoin
	}
	return b.Verify(suite, brokerPub, now)
}

// Clone returns a deep copy.
func (b *Binding) Clone() *Binding {
	out := *b
	out.CoinPub = b.CoinPub.Clone()
	out.Holder = b.Holder.Clone()
	out.Sig = append([]byte(nil), b.Sig...)
	return &out
}

// Equal reports whether two bindings are bit-identical (the broker's
// "flavor two" downtime verification is exactly this comparison).
func (b *Binding) Equal(other *Binding) bool {
	if b == nil || other == nil {
		return b == other
	}
	return bytes.Equal(b.Message(), other.Message()) && bytes.Equal(b.Sig, other.Sig)
}

// TransferBody is the inner content of a transfer (or renewal) request: the
// paper's {pkCW, CV} plus the payee's challenge nonce and address, which
// travel payee → payer → owner so the owner can deliver the new binding and
// prove ownership without an extra round trip.
type TransferBody struct {
	CoinPub   sig.PublicKey
	NewHolder sig.PublicKey
	PrevSeq   uint64
	Nonce     []byte
	PayeeAddr string
}

// Message returns the canonical bytes the relinquishing holder signs with
// the current holder key (skCV in the paper's notation).
func (t *TransferBody) Message() []byte {
	var out []byte
	out = append(out, "whopay/transfer/1"...)
	out = appendBytes(out, t.CoinPub)
	out = appendBytes(out, t.NewHolder)
	out = binary.BigEndian.AppendUint64(out, t.PrevSeq)
	out = appendBytes(out, t.Nonce)
	out = appendBytes(out, []byte(t.PayeeAddr))
	return out
}

// ChallengeMessage returns the canonical bytes an owner (or the broker)
// signs to answer a payee's ownership challenge for a coin.
func ChallengeMessage(coinPub sig.PublicKey, nonce []byte) []byte {
	var out []byte
	out = append(out, "whopay/challenge/1"...)
	out = appendBytes(out, coinPub)
	out = appendBytes(out, nonce)
	return out
}

// appendBytes appends a uvarint length prefix followed by the bytes; the
// prefix makes concatenated fields unambiguous.
func appendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}
