package coin

import (
	"encoding/binary"
	"errors"
	"fmt"

	"whopay/internal/sig"
)

// ErrBadEncoding is returned by Unmarshal functions for malformed input.
var ErrBadEncoding = errors.New("coin: malformed encoding")

// Marshal serializes the binding, including its signature, in the canonical
// length-prefixed form. This is the value peers publish to the DHT's public
// binding list.
func (b *Binding) Marshal() []byte {
	var out []byte
	out = appendBytes(out, b.CoinPub)
	out = appendBytes(out, b.Holder)
	out = binary.BigEndian.AppendUint64(out, b.Seq)
	out = binary.BigEndian.AppendUint64(out, uint64(b.Expiry))
	if b.ByBroker {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	out = appendBytes(out, b.Sig)
	return out
}

// UnmarshalBinding parses a binding serialized with Marshal. The result's
// signature still needs verification.
func UnmarshalBinding(data []byte) (*Binding, error) {
	b := &Binding{}
	var err error
	var raw []byte
	if raw, data, err = readBytes(data); err != nil {
		return nil, fmt.Errorf("%w: coin pub: %v", ErrBadEncoding, err)
	}
	b.CoinPub = sig.PublicKey(raw)
	if raw, data, err = readBytes(data); err != nil {
		return nil, fmt.Errorf("%w: holder: %v", ErrBadEncoding, err)
	}
	b.Holder = sig.PublicKey(raw)
	if len(data) < 17 {
		return nil, fmt.Errorf("%w: truncated fixed fields", ErrBadEncoding)
	}
	b.Seq = binary.BigEndian.Uint64(data[:8])
	b.Expiry = int64(binary.BigEndian.Uint64(data[8:16]))
	switch data[16] {
	case 0:
	case 1:
		b.ByBroker = true
	default:
		return nil, fmt.Errorf("%w: bad flag byte", ErrBadEncoding)
	}
	data = data[17:]
	if raw, data, err = readBytes(data); err != nil {
		return nil, fmt.Errorf("%w: signature: %v", ErrBadEncoding, err)
	}
	b.Sig = raw
	if len(data) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrBadEncoding)
	}
	return b, nil
}

func readBytes(data []byte) (field, rest []byte, err error) {
	n, used := binary.Uvarint(data)
	if used <= 0 || n > uint64(len(data)-used) {
		return nil, nil, errors.New("bad length prefix")
	}
	return append([]byte(nil), data[used:used+int(n)]...), data[used+int(n):], nil
}
