package coin

import (
	"whopay/internal/sig"
	"whopay/internal/wire"
)

// Fixed-layout wire codecs (internal/wire) for the coin structures embedded
// in protocol messages. These are transport encodings, distinct from the
// canonical signed Message()/Marshal() forms: signatures keep verifying over
// the canonical bytes regardless of how a message traveled.

// AppendWire appends the coin's wire encoding to dst.
func (c *Coin) AppendWire(dst []byte) []byte {
	dst = wire.AppendString(dst, c.Owner)
	dst = wire.AppendBytes(dst, c.Handle)
	dst = wire.AppendBytes(dst, c.Pub)
	dst = wire.AppendInt(dst, c.Value)
	dst = wire.AppendBytes(dst, c.Sig)
	return dst
}

// DecodeWireCoin decodes a coin written by AppendWire.
func DecodeWireCoin(d *wire.Decoder) (Coin, error) {
	var c Coin
	var err error
	if c.Owner, err = d.String(); err != nil {
		return c, err
	}
	if c.Handle, err = d.Bytes(); err != nil {
		return c, err
	}
	var pub []byte
	if pub, err = d.Bytes(); err != nil {
		return c, err
	}
	c.Pub = sig.PublicKey(pub)
	if c.Value, err = d.Int(); err != nil {
		return c, err
	}
	if c.Sig, err = d.Bytes(); err != nil {
		return c, err
	}
	return c, nil
}

// AppendWire appends the binding's wire encoding to dst.
func (b *Binding) AppendWire(dst []byte) []byte {
	dst = wire.AppendBytes(dst, b.CoinPub)
	dst = wire.AppendBytes(dst, b.Holder)
	dst = wire.AppendU64(dst, b.Seq)
	dst = wire.AppendU64(dst, uint64(b.Expiry))
	dst = wire.AppendBool(dst, b.ByBroker)
	dst = wire.AppendBytes(dst, b.Sig)
	return dst
}

// DecodeWireBinding decodes a binding written by AppendWire.
func DecodeWireBinding(d *wire.Decoder) (Binding, error) {
	var b Binding
	var err error
	var raw []byte
	if raw, err = d.Bytes(); err != nil {
		return b, err
	}
	b.CoinPub = sig.PublicKey(raw)
	if raw, err = d.Bytes(); err != nil {
		return b, err
	}
	b.Holder = sig.PublicKey(raw)
	if b.Seq, err = d.U64(); err != nil {
		return b, err
	}
	var exp uint64
	if exp, err = d.U64(); err != nil {
		return b, err
	}
	b.Expiry = int64(exp)
	if b.ByBroker, err = d.Bool(); err != nil {
		return b, err
	}
	if b.Sig, err = d.Bytes(); err != nil {
		return b, err
	}
	return b, nil
}

// AppendWireBindingPtr appends an optional binding: one presence byte, then the
// binding when present. Nil round-trips to nil, matching gob's treatment of
// nil pointer fields.
func AppendWireBindingPtr(dst []byte, b *Binding) []byte {
	if b == nil {
		return wire.AppendBool(dst, false)
	}
	dst = wire.AppendBool(dst, true)
	return b.AppendWire(dst)
}

// DecodeWireBindingPtr decodes an optional binding written by
// AppendWireBindingPtr.
func DecodeWireBindingPtr(d *wire.Decoder) (*Binding, error) {
	present, err := d.Bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	b, err := DecodeWireBinding(d)
	if err != nil {
		return nil, err
	}
	return &b, nil
}

// AppendWire appends the transfer body's wire encoding to dst.
func (t *TransferBody) AppendWire(dst []byte) []byte {
	dst = wire.AppendBytes(dst, t.CoinPub)
	dst = wire.AppendBytes(dst, t.NewHolder)
	dst = wire.AppendU64(dst, t.PrevSeq)
	dst = wire.AppendBytes(dst, t.Nonce)
	dst = wire.AppendString(dst, t.PayeeAddr)
	return dst
}

// DecodeWireTransferBody decodes a transfer body written by AppendWire.
func DecodeWireTransferBody(d *wire.Decoder) (TransferBody, error) {
	var t TransferBody
	var err error
	var raw []byte
	if raw, err = d.Bytes(); err != nil {
		return t, err
	}
	t.CoinPub = sig.PublicKey(raw)
	if raw, err = d.Bytes(); err != nil {
		return t, err
	}
	t.NewHolder = sig.PublicKey(raw)
	if t.PrevSeq, err = d.U64(); err != nil {
		return t, err
	}
	if t.Nonce, err = d.Bytes(); err != nil {
		return t, err
	}
	if t.PayeeAddr, err = d.String(); err != nil {
		return t, err
	}
	return t, nil
}
