package groupsig

import (
	"whopay/internal/sig"
	"whopay/internal/wire"
)

// Fixed-layout wire codecs (internal/wire) for the group-signature
// structures embedded in protocol messages.

// AppendWire appends the credential's wire encoding to dst.
func (c *Credential) AppendWire(dst []byte) []byte {
	dst = wire.AppendU64(dst, c.Serial)
	dst = wire.AppendBytes(dst, c.Pub)
	dst = wire.AppendBytes(dst, c.Cert)
	return dst
}

// DecodeWireCredential decodes a credential written by AppendWire.
func DecodeWireCredential(d *wire.Decoder) (Credential, error) {
	var c Credential
	var err error
	if c.Serial, err = d.U64(); err != nil {
		return c, err
	}
	var raw []byte
	if raw, err = d.Bytes(); err != nil {
		return c, err
	}
	c.Pub = sig.PublicKey(raw)
	if c.Cert, err = d.Bytes(); err != nil {
		return c, err
	}
	return c, nil
}

// AppendWire appends the group signature's wire encoding to dst.
func (s *Signature) AppendWire(dst []byte) []byte {
	dst = s.Cred.AppendWire(dst)
	dst = wire.AppendBytes(dst, s.Sig)
	return dst
}

// DecodeWireSignature decodes a group signature written by AppendWire.
func DecodeWireSignature(d *wire.Decoder) (Signature, error) {
	var s Signature
	var err error
	if s.Cred, err = DecodeWireCredential(d); err != nil {
		return s, err
	}
	if s.Sig, err = d.Bytes(); err != nil {
		return s, err
	}
	return s, nil
}

// AppendWireSignaturePtr appends an optional group signature: a presence
// byte, then the signature when present (nil round-trips to nil, as gob
// does for nil pointer fields).
func AppendWireSignaturePtr(dst []byte, s *Signature) []byte {
	if s == nil {
		return wire.AppendBool(dst, false)
	}
	dst = wire.AppendBool(dst, true)
	return s.AppendWire(dst)
}

// DecodeWireSignaturePtr decodes an optional group signature written by
// AppendWireSignaturePtr.
func DecodeWireSignaturePtr(d *wire.Decoder) (*Signature, error) {
	present, err := d.Bool()
	if err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	s, err := DecodeWireSignature(d)
	if err != nil {
		return nil, err
	}
	return &s, nil
}

// AppendWire appends the issued credential's wire encoding to dst. The
// private key crosses the wire here exactly as it does under gob; transport
// confidentiality remains the deployment's problem (see judgeserver.go).
func (ic *IssuedCredential) AppendWire(dst []byte) []byte {
	dst = ic.Cred.AppendWire(dst)
	dst = wire.AppendBytes(dst, ic.Priv)
	return dst
}

// DecodeWireIssuedCredential decodes an issued credential written by
// AppendWire.
func DecodeWireIssuedCredential(d *wire.Decoder) (IssuedCredential, error) {
	var ic IssuedCredential
	var err error
	if ic.Cred, err = DecodeWireCredential(d); err != nil {
		return ic, err
	}
	var raw []byte
	if raw, err = d.Bytes(); err != nil {
		return ic, err
	}
	ic.Priv = sig.PrivateKey(raw)
	return ic, nil
}
