package groupsig

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"

	"whopay/internal/sig"
)

func newTestGroup(t *testing.T) (*Manager, sig.Suite) {
	t.Helper()
	scheme := sig.NewNull(100)
	m, err := NewManager(scheme)
	if err != nil {
		t.Fatal(err)
	}
	return m, sig.Suite{Scheme: scheme}
}

func TestSignVerifyOpen(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("transfer coin X to holder key Y")
	gs, err := mk.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(suite, m.GroupPublicKey(), msg, gs); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	identity, err := m.Open(msg, gs)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if identity != "alice" {
		t.Fatalf("Open = %q, want alice", identity)
	}
}

func TestVerifyRejectsTamperedMessage(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := mk.Sign(suite, []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(suite, m.GroupPublicKey(), []byte("tampered"), gs); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsForeignGroup(t *testing.T) {
	m1, suite := newTestGroup(t)
	m2, err := NewManager(suite.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := m1.Enroll("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("msg")
	gs, err := mk.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(suite, m2.GroupPublicKey(), msg, gs); !errors.Is(err, ErrNotMember) {
		t.Fatalf("got %v, want ErrNotMember", err)
	}
}

func TestVerifyRejectsUncertifiedCredential(t *testing.T) {
	m, suite := newTestGroup(t)
	// Adversary mints its own key pair and self-signed cert.
	kp, err := suite.Scheme.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("msg")
	fakeCert, err := suite.Scheme.Sign(kp.Private, CredentialMessage(99, kp.Public))
	if err != nil {
		t.Fatal(err)
	}
	body, err := suite.Scheme.Sign(kp.Private, msg)
	if err != nil {
		t.Fatal(err)
	}
	gs := Signature{Cred: Credential{Serial: 99, Pub: kp.Public, Cert: fakeCert}, Sig: body}
	if err := Verify(suite, m.GroupPublicKey(), msg, gs); !errors.Is(err, ErrNotMember) {
		t.Fatalf("got %v, want ErrNotMember", err)
	}
}

func TestSignaturesAreUnlinkable(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 8)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("same message twice")
	gs1, err := mk.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	gs2, err := mk.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	if gs1.Cred.Serial == gs2.Cred.Serial {
		t.Fatal("two signatures reused a credential serial (linkable)")
	}
	if bytes.Equal(gs1.Cred.Pub, gs2.Cred.Pub) {
		t.Fatal("two signatures reused a credential key (linkable)")
	}
}

func TestSignatureCarriesNoIdentity(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice-the-payer", 2)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := mk.Sign(suite, []byte("msg"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(gs.Cred.Pub, []byte("alice")) || bytes.Contains(gs.Cred.Cert, []byte("alice")) || bytes.Contains(gs.Sig, []byte("alice")) {
		t.Fatal("identity leaked into signature bytes")
	}
}

func TestPoolRefill(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < refillBatch+5; i++ {
		gs, err := mk.Sign(suite, []byte("m"))
		if err != nil {
			t.Fatalf("Sign %d: %v", i, err)
		}
		if seen[gs.Cred.Serial] {
			t.Fatalf("serial %d reused", gs.Cred.Serial)
		}
		seen[gs.Cred.Serial] = true
		identity, err := m.Open([]byte("m"), gs)
		if err != nil || identity != "alice" {
			t.Fatalf("Open after refill = %q, %v", identity, err)
		}
	}
}

func TestExhaustedPoolWithoutRefill(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 1)
	if err != nil {
		t.Fatal(err)
	}
	mk.refill = nil
	if _, err := mk.Sign(suite, []byte("m")); err != nil {
		t.Fatal(err)
	}
	if _, err := mk.Sign(suite, []byte("m")); !errors.Is(err, ErrNoCredentials) {
		t.Fatalf("got %v, want ErrNoCredentials", err)
	}
}

func TestOpenRefusesForgedSignature(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := mk.Sign(suite, []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	// Judge must not attribute a signature that does not verify.
	if _, err := m.Open([]byte("different"), gs); err == nil {
		t.Fatal("Open attributed an invalid signature")
	}
}

func TestOpenUnknownSerial(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	gs, err := mk.Sign(suite, []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	// A second manager with the same scheme cannot open it.
	m2, err := NewManager(suite.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Open([]byte("m"), gs); err == nil {
		t.Fatal("foreign manager opened a signature")
	}
	_ = mk
}

func TestRevocation(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("mallory", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mk.Sign(suite, []byte("m")); err != nil {
		t.Fatal(err)
	}
	m.Revoke("mallory")
	if !m.IsRevoked("mallory") {
		t.Fatal("IsRevoked = false after Revoke")
	}
	// Pool is empty; refill must fail.
	if _, err := mk.Sign(suite, []byte("m")); err == nil {
		t.Fatal("revoked member still obtained credentials")
	}
	if _, err := m.Enroll("mallory", 1); !errors.Is(err, ErrRevoked) {
		t.Fatalf("re-enroll = %v, want ErrRevoked", err)
	}
}

func TestEnrollValidation(t *testing.T) {
	m, _ := newTestGroup(t)
	if _, err := m.Enroll("", 1); err == nil {
		t.Fatal("Enroll accepted empty identity")
	}
}

func TestDistinctMembersOpenDistinctly(t *testing.T) {
	m, suite := newTestGroup(t)
	alice, err := m.Enroll("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	bob, err := m.Enroll("bob", 2)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("payment")
	gsA, err := alice.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	gsB, err := bob.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	idA, err := m.Open(msg, gsA)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := m.Open(msg, gsB)
	if err != nil {
		t.Fatal(err)
	}
	if idA != "alice" || idB != "bob" {
		t.Fatalf("Open = %q, %q", idA, idB)
	}
}

func TestMasterKeyEscrow(t *testing.T) {
	scheme := sig.Ed25519{}
	m, err := NewManager(scheme)
	if err != nil {
		t.Fatal(err)
	}
	shares, err := m.EscrowMasterKey(3, 5)
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverMasterKey(shares[1:4], len(m.master.Private))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recovered, m.master.Private) {
		t.Fatal("escrow recovery mismatch")
	}
	// Recovered key must actually sign valid certificates.
	sigBytes, err := scheme.Sign(recovered, []byte("probe"))
	if err != nil {
		t.Fatal(err)
	}
	if err := scheme.Verify(m.GroupPublicKey(), []byte("probe"), sigBytes); err != nil {
		t.Fatalf("recovered key does not match group public key: %v", err)
	}
}

func TestCostAccounting(t *testing.T) {
	scheme := sig.NewNull(101)
	m, err := NewManager(scheme)
	if err != nil {
		t.Fatal(err)
	}
	var rec sig.Counter
	suite := sig.Suite{Scheme: scheme, Rec: &rec}
	mk, err := m.Enroll("alice", 4)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("m")
	gs, err := mk.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(suite, m.GroupPublicKey(), msg, gs); err != nil {
		t.Fatal(err)
	}
	got := rec.Snapshot()
	want := sig.Snapshot{GroupSigns: 1, GroupVerifies: 1}
	if got != want {
		t.Fatalf("snapshot = %+v, want %+v (group ops must not double count regular ops)", got, want)
	}
}

func TestConcurrentSigning(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	const workers, each = 8, 50
	serials := make(chan uint64, workers*each)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				gs, err := mk.Sign(suite, []byte("m"))
				if err != nil {
					t.Error(err)
					return
				}
				serials <- gs.Cred.Serial
			}
		}()
	}
	wg.Wait()
	close(serials)
	seen := make(map[uint64]bool)
	for s := range serials {
		if seen[s] {
			t.Fatal("credential serial reused under concurrency")
		}
		seen[s] = true
	}
}

// TestSignVerifyProperty: arbitrary messages sign, verify, and open
// correctly.
func TestSignVerifyProperty(t *testing.T) {
	m, suite := newTestGroup(t)
	mk, err := m.Enroll("prop", 64)
	if err != nil {
		t.Fatal(err)
	}
	groupPub := m.GroupPublicKey()
	f := func(msg []byte) bool {
		gs, err := mk.Sign(suite, msg)
		if err != nil {
			return false
		}
		if err := Verify(suite, groupPub, msg, gs); err != nil {
			return false
		}
		id, err := m.Open(msg, gs)
		return err == nil && id == "prop"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGroupSignECDSA(b *testing.B) {
	scheme := sig.ECDSA{}
	m, err := NewManager(scheme)
	if err != nil {
		b.Fatal(err)
	}
	mk, err := m.Enroll("bench", b.N+refillBatch)
	if err != nil {
		b.Fatal(err)
	}
	suite := sig.Suite{Scheme: scheme}
	msg := []byte("benchmark message")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mk.Sign(suite, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGroupVerifyECDSA(b *testing.B) {
	scheme := sig.ECDSA{}
	m, err := NewManager(scheme)
	if err != nil {
		b.Fatal(err)
	}
	mk, err := m.Enroll("bench", 2)
	if err != nil {
		b.Fatal(err)
	}
	suite := sig.Suite{Scheme: scheme}
	msg := []byte("benchmark message")
	gs, err := mk.Sign(suite, msg)
	if err != nil {
		b.Fatal(err)
	}
	groupPub := m.GroupPublicKey()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(suite, groupPub, msg, gs); err != nil {
			b.Fatal(err)
		}
	}
}
