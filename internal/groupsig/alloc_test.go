package groupsig

import (
	"errors"
	"testing"

	"whopay/internal/sig"
)

// TestVerifyAllocs pins the allocation budget of the group-signature hot
// path: the credential message comes from a pooled buffer and the group key
// is never re-cloned, so what remains is the two-job batch (jobs + errs
// slices) and the scheme's own hashing. Measured under Null so scheme
// internals stay deterministic.
func TestVerifyAllocs(t *testing.T) {
	scheme := sig.NewNull(3)
	mgr, err := NewManager(scheme)
	if err != nil {
		t.Fatal(err)
	}
	mk, err := mgr.Enroll("alice", 4)
	if err != nil {
		t.Fatal(err)
	}
	suite := sig.Suite{Scheme: scheme}
	groupPub := mgr.GroupPublicKey()
	msg := []byte("alloc budget message")
	gs, err := mk.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(200, func() {
		if err := Verify(suite, groupPub, msg, gs); err != nil {
			t.Fatal(err)
		}
	})
	if got > 5 {
		t.Fatalf("Verify allocates %.1f times per call, budget is 5", got)
	}
}

// TestVerifierRevocationBeatsMemo: a credential that verified — and was
// memoized by the cached scheme — stops verifying the moment its serial
// lands on the CRL, because the CRL check precedes the memo and OnRevoke
// invalidates the credential key.
func TestVerifierRevocationBeatsMemo(t *testing.T) {
	mgr, err := NewManager(sig.ECDSA{})
	if err != nil {
		t.Fatal(err)
	}
	mk, err := mgr.Enroll("mallory", 4)
	if err != nil {
		t.Fatal(err)
	}
	suite, cache := sig.NewCachedSuite(sig.Suite{Scheme: sig.ECDSA{}}, sig.CacheOptions{})
	v := NewVerifier(mgr.GroupPublicKey())
	v.OnRevoke = cache.InvalidateKey

	msg := []byte("spend it twice")
	gs, err := mk.Sign(suite, msg)
	if err != nil {
		t.Fatal(err)
	}
	// Verify twice so the second pass provably runs against warm memo state.
	for i := 0; i < 2; i++ {
		if err := v.Verify(suite, msg, gs); err != nil {
			t.Fatalf("pre-revocation verify %d: %v", i, err)
		}
	}
	if cache.ResultLen() == 0 {
		t.Fatal("memo did not warm up")
	}

	serials, pubs := mgr.Revoke("mallory")
	if len(serials) == 0 || len(serials) != len(pubs) {
		t.Fatalf("Revoke returned %d serials, %d pubs", len(serials), len(pubs))
	}
	v.Revoke(serials, pubs)

	err = v.Verify(suite, msg, gs)
	if !errors.Is(err, ErrCredentialRevoked) {
		t.Fatalf("post-revocation verify = %v, want ErrCredentialRevoked", err)
	}
	// The unrevoked path must still work: the package-level Verify (no CRL)
	// re-runs real crypto since the credential key was invalidated.
	if err := Verify(suite, mgr.GroupPublicKey(), msg, gs); err != nil {
		t.Fatalf("package Verify after key invalidation: %v", err)
	}
}
