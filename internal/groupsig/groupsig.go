// Package groupsig provides the group-signature functionality WhoPay uses
// for fairness (paper Section 3.2): every user enrolls with a trusted judge
// and signs sensitive messages in a way that (a) proves membership to any
// verifier holding the group public key, (b) reveals nothing about the
// signer's identity and is unlinkable across signatures, and (c) lets the
// judge — and only the judge — open a signature to recover the signer.
//
// Construction (documented substitution, see DESIGN.md §5): instead of a
// pairing-based scheme, the judge issues each member a pool of one-time
// credentials. A credential is a fresh key pair whose public half is
// certified by the judge's master key together with an opaque serial number;
// the judge privately maps serials to identities. Signing consumes one
// credential, so distinct signatures carry distinct serials and are
// unlinkable. Verification checks the judge's certificate and the
// credential signature — about twice the cost of a plain signature, which
// matches the 2x relative cost the paper assumes for group signatures
// (Table 3).
package groupsig

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"whopay/internal/shamir"
	"whopay/internal/sig"
)

// Errors returned by this package.
var (
	// ErrNotMember is returned by Verify when the credential certificate
	// does not validate under the group public key.
	ErrNotMember = errors.New("groupsig: credential not certified by this group")
	// ErrBadSignature is returned by Verify when the message signature
	// does not validate under the credential key.
	ErrBadSignature = errors.New("groupsig: invalid signature")
	// ErrUnknownSerial is returned by Open for serials the judge never
	// issued.
	ErrUnknownSerial = errors.New("groupsig: unknown credential serial")
	// ErrRevoked is returned when a revoked member requests credentials.
	ErrRevoked = errors.New("groupsig: member revoked")
	// ErrNoCredentials is returned by Sign when the pool is empty and no
	// refill source is available.
	ErrNoCredentials = errors.New("groupsig: credential pool exhausted")
)

// Credential is the public part of a one-time signing credential: a fresh
// public key certified by the judge. Cert signs credentialMessage(Serial,
// Pub) under the group master key.
type Credential struct {
	Serial uint64
	Pub    sig.PublicKey
	Cert   []byte
}

// Signature is a group signature: a one-time credential plus a signature by
// the credential key over the message. It reveals no identity; the judge
// can map Serial back to the enrolled member.
type Signature struct {
	Cred Credential
	Sig  []byte
}

// credentialMessage is the canonical byte string certified by the judge.
func credentialMessage(serial uint64, pub sig.PublicKey) []byte {
	msg := make([]byte, 0, 28+len(pub))
	msg = append(msg, "whopay/groupsig/credential/1"...)
	msg = binary.BigEndian.AppendUint64(msg, serial)
	msg = append(msg, pub...)
	return msg
}

// Verify checks that gs is a valid group signature over msg for the group
// identified by groupPub. It records one group-verification micro-op on the
// suite's recorder (the underlying two plain verifications are deliberately
// not double-counted; Table 3 weighs the group operation as a unit).
func Verify(suite sig.Suite, groupPub sig.PublicKey, msg []byte, gs Signature) error {
	if suite.Rec != nil {
		suite.Rec.RecordGroupVerify()
	}
	if err := suite.Scheme.Verify(groupPub, credentialMessage(gs.Cred.Serial, gs.Cred.Pub), gs.Cred.Cert); err != nil {
		return fmt.Errorf("%w: %v", ErrNotMember, err)
	}
	if err := suite.Scheme.Verify(gs.Cred.Pub, msg, gs.Sig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, err)
	}
	return nil
}

// secretCredential pairs a credential with its private key; it never leaves
// the member.
type secretCredential struct {
	cred Credential
	priv sig.PrivateKey
}

// IssuedCredential is the transferable form of a credential plus its
// private key, used when enrollment happens over a network (the judge
// issues, the member imports). Transport confidentiality is the caller's
// problem: anyone who reads Priv can sign as the member.
type IssuedCredential struct {
	Cred Credential
	Priv sig.PrivateKey
}

// MemberKey is a member's group private key: a pool of one-time credentials
// plus a refill channel back to the judge. Safe for concurrent use.
type MemberKey struct {
	identity string
	groupPub sig.PublicKey

	mu     sync.Mutex
	pool   []secretCredential
	refill func(n int) ([]secretCredential, error)
}

// Identity returns the enrolled identity this key was issued to. The
// identity is local to the member and the judge; it is never embedded in
// signatures.
func (mk *MemberKey) Identity() string { return mk.identity }

// GroupPublicKey returns the group public key credentials are certified
// under.
func (mk *MemberKey) GroupPublicKey() sig.PublicKey { return mk.groupPub.Clone() }

// PoolSize reports how many unused credentials remain.
func (mk *MemberKey) PoolSize() int {
	mk.mu.Lock()
	defer mk.mu.Unlock()
	return len(mk.pool)
}

// refillBatch is how many credentials a member fetches when its pool runs
// dry. Larger batches amortize judge round-trips.
const refillBatch = 32

// Sign produces a group signature over msg, consuming one credential. It
// records one group-signing micro-op on the suite's recorder. When the pool
// is empty the member transparently requests a refill from the judge.
func (mk *MemberKey) Sign(suite sig.Suite, msg []byte) (Signature, error) {
	if suite.Rec != nil {
		suite.Rec.RecordGroupSign()
	}
	sc, err := mk.take()
	if err != nil {
		return Signature{}, err
	}
	sigBytes, err := suite.Scheme.Sign(sc.priv, msg)
	if err != nil {
		return Signature{}, fmt.Errorf("groupsig: signing with credential %d: %w", sc.cred.Serial, err)
	}
	return Signature{Cred: sc.cred, Sig: sigBytes}, nil
}

func (mk *MemberKey) take() (secretCredential, error) {
	mk.mu.Lock()
	defer mk.mu.Unlock()
	if len(mk.pool) == 0 {
		if mk.refill == nil {
			return secretCredential{}, ErrNoCredentials
		}
		fresh, err := mk.refill(refillBatch)
		if err != nil {
			return secretCredential{}, fmt.Errorf("groupsig: refilling credentials: %w", err)
		}
		mk.pool = fresh
	}
	sc := mk.pool[len(mk.pool)-1]
	mk.pool = mk.pool[:len(mk.pool)-1]
	return sc, nil
}

// Manager is the judge-side group manager: it enrolls members, issues
// credentials, and opens signatures. Safe for concurrent use.
type Manager struct {
	scheme sig.Scheme
	master sig.KeyPair

	mu       sync.Mutex
	serials  map[uint64]string // credential serial -> member identity
	enrolled map[string]bool
	revoked  map[string]bool
	next     uint64
}

// NewManager creates a group with a fresh master key under scheme.
func NewManager(scheme sig.Scheme) (*Manager, error) {
	master, err := scheme.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("groupsig: generating master key: %w", err)
	}
	return &Manager{
		scheme:   scheme,
		master:   master,
		serials:  make(map[uint64]string),
		enrolled: make(map[string]bool),
		revoked:  make(map[string]bool),
	}, nil
}

// GroupPublicKey returns the master public key verifiers use.
func (m *Manager) GroupPublicKey() sig.PublicKey { return m.master.Public.Clone() }

// Enroll registers identity with the group and returns its member key,
// pre-charged with poolSize one-time credentials. Enrolling the same
// identity again yields a fresh key (e.g. after device loss); old unused
// credentials remain openable to the same identity.
func (m *Manager) Enroll(identity string, poolSize int) (*MemberKey, error) {
	if identity == "" {
		return nil, errors.New("groupsig: empty identity")
	}
	m.mu.Lock()
	if m.revoked[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("enrolling %q: %w", identity, ErrRevoked)
	}
	m.enrolled[identity] = true
	m.mu.Unlock()

	mk := &MemberKey{
		identity: identity,
		groupPub: m.master.Public.Clone(),
		refill:   func(n int) ([]secretCredential, error) { return m.issue(identity, n) },
	}
	pool, err := m.issue(identity, poolSize)
	if err != nil {
		return nil, err
	}
	mk.pool = pool
	return mk, nil
}

// issue mints n one-time credentials for identity.
func (m *Manager) issue(identity string, n int) ([]secretCredential, error) {
	m.mu.Lock()
	if m.revoked[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("issuing to %q: %w", identity, ErrRevoked)
	}
	if !m.enrolled[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("groupsig: %q not enrolled", identity)
	}
	base := m.next
	m.next += uint64(n)
	m.mu.Unlock()

	out := make([]secretCredential, 0, n)
	for i := 0; i < n; i++ {
		serial := base + uint64(i)
		kp, err := m.scheme.GenerateKey()
		if err != nil {
			return nil, fmt.Errorf("groupsig: credential keygen: %w", err)
		}
		cert, err := m.scheme.Sign(m.master.Private, credentialMessage(serial, kp.Public))
		if err != nil {
			return nil, fmt.Errorf("groupsig: certifying credential: %w", err)
		}
		out = append(out, secretCredential{
			cred: Credential{Serial: serial, Pub: kp.Public, Cert: cert},
			priv: kp.Private,
		})
	}
	m.mu.Lock()
	for _, sc := range out {
		m.serials[sc.cred.Serial] = identity
	}
	m.mu.Unlock()
	return out, nil
}

// IssueCredentials mints n one-time credentials for an enrolled identity
// in transferable form (remote enrollment / refill).
func (m *Manager) IssueCredentials(identity string, n int) ([]IssuedCredential, error) {
	secrets, err := m.issue(identity, n)
	if err != nil {
		return nil, err
	}
	out := make([]IssuedCredential, len(secrets))
	for i, sc := range secrets {
		out[i] = IssuedCredential{Cred: sc.cred, Priv: sc.priv}
	}
	return out, nil
}

// EnrollRemote registers identity and returns its initial credentials in
// transferable form; combine with NewMemberKey on the member side.
func (m *Manager) EnrollRemote(identity string, poolSize int) ([]IssuedCredential, error) {
	if identity == "" {
		return nil, errors.New("groupsig: empty identity")
	}
	m.mu.Lock()
	if m.revoked[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("enrolling %q: %w", identity, ErrRevoked)
	}
	m.enrolled[identity] = true
	m.mu.Unlock()
	return m.IssueCredentials(identity, poolSize)
}

// NewMemberKey assembles a member key from remotely issued credentials.
// refill (may be nil) is called when the pool runs dry — typically an RPC
// back to the judge.
func NewMemberKey(identity string, groupPub sig.PublicKey, creds []IssuedCredential, refill func(n int) ([]IssuedCredential, error)) *MemberKey {
	mk := &MemberKey{identity: identity, groupPub: groupPub.Clone()}
	mk.pool = importCredentials(creds)
	if refill != nil {
		mk.refill = func(n int) ([]secretCredential, error) {
			fresh, err := refill(n)
			if err != nil {
				return nil, err
			}
			return importCredentials(fresh), nil
		}
	}
	return mk
}

func importCredentials(creds []IssuedCredential) []secretCredential {
	out := make([]secretCredential, len(creds))
	for i, ic := range creds {
		out[i] = secretCredential{cred: ic.Cred, priv: ic.Priv}
	}
	return out
}

// Open reveals the identity behind a group signature. It first verifies the
// signature so a forged serial cannot frame an innocent member. This is the
// fairness operation: the paper's judge performs it only on transactions
// under investigation and learns nothing about others.
func (m *Manager) Open(msg []byte, gs Signature) (string, error) {
	if err := Verify(sig.Suite{Scheme: m.scheme}, m.master.Public, msg, gs); err != nil {
		return "", fmt.Errorf("groupsig: refusing to open unverified signature: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	identity, ok := m.serials[gs.Cred.Serial]
	if !ok {
		return "", ErrUnknownSerial
	}
	return identity, nil
}

// Revoke bars identity from obtaining further credentials. Outstanding
// credentials remain verifiable (this construction has no CRL), but every
// use remains openable to the revoked identity.
func (m *Manager) Revoke(identity string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.revoked[identity] = true
}

// IsRevoked reports whether identity has been revoked.
func (m *Manager) IsRevoked(identity string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.revoked[identity]
}

// escrowChunk is the number of key bytes per Shamir secret; it keeps every
// chunk strictly below the 256-bit field prime regardless of content.
const escrowChunk = 31

// KeyShare is one judge's escrow share of a master key: one Shamir share
// per 31-byte chunk of the key.
type KeyShare struct {
	Chunks []shamir.Share
}

// EscrowMasterKey splits the master private key into n key shares with
// threshold k (paper Section 3.2: divide the master key among N judges via
// Shamir so at least K must cooperate to recover it). Keys longer than 31
// bytes are split chunk-wise; each chunk is an independent Shamir instance,
// so the threshold property holds for the whole key.
func (m *Manager) EscrowMasterKey(k, n int) ([]KeyShare, error) {
	priv := m.master.Private
	out := make([]KeyShare, n)
	for off := 0; off < len(priv); off += escrowChunk {
		end := off + escrowChunk
		if end > len(priv) {
			end = len(priv)
		}
		shares, err := shamir.Split(priv[off:end], k, n)
		if err != nil {
			return nil, fmt.Errorf("groupsig: escrowing key chunk at %d: %w", off, err)
		}
		for i := range out {
			out[i].Chunks = append(out[i].Chunks, shares[i])
		}
	}
	return out, nil
}

// RecoverMasterKey reconstructs a master private key from at least k escrow
// key shares. privLen must be the scheme's private key length.
func RecoverMasterKey(shares []KeyShare, privLen int) (sig.PrivateKey, error) {
	if len(shares) == 0 {
		return nil, errors.New("groupsig: no escrow shares")
	}
	numChunks := len(shares[0].Chunks)
	for _, s := range shares {
		if len(s.Chunks) != numChunks {
			return nil, errors.New("groupsig: escrow shares have mismatched chunk counts")
		}
	}
	priv := make(sig.PrivateKey, 0, privLen)
	for c := 0; c < numChunks; c++ {
		chunkLen := escrowChunk
		if c == numChunks-1 {
			chunkLen = privLen - c*escrowChunk
		}
		if chunkLen <= 0 {
			return nil, errors.New("groupsig: privLen inconsistent with share chunk count")
		}
		chunkShares := make([]shamir.Share, len(shares))
		for i, s := range shares {
			chunkShares[i] = s.Chunks[c]
		}
		raw, err := shamir.Combine(chunkShares, chunkLen)
		if err != nil {
			return nil, fmt.Errorf("groupsig: recovering key chunk %d: %w", c, err)
		}
		priv = append(priv, raw...)
	}
	return priv, nil
}
