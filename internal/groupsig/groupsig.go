// Package groupsig provides the group-signature functionality WhoPay uses
// for fairness (paper Section 3.2): every user enrolls with a trusted judge
// and signs sensitive messages in a way that (a) proves membership to any
// verifier holding the group public key, (b) reveals nothing about the
// signer's identity and is unlinkable across signatures, and (c) lets the
// judge — and only the judge — open a signature to recover the signer.
//
// Construction (documented substitution, see DESIGN.md §5): instead of a
// pairing-based scheme, the judge issues each member a pool of one-time
// credentials. A credential is a fresh key pair whose public half is
// certified by the judge's master key together with an opaque serial number;
// the judge privately maps serials to identities. Signing consumes one
// credential, so distinct signatures carry distinct serials and are
// unlinkable. Verification checks the judge's certificate and the
// credential signature — about twice the cost of a plain signature, which
// matches the 2x relative cost the paper assumes for group signatures
// (Table 3).
package groupsig

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"whopay/internal/shamir"
	"whopay/internal/sig"
)

// Errors returned by this package.
var (
	// ErrNotMember is returned by Verify when the credential certificate
	// does not validate under the group public key.
	ErrNotMember = errors.New("groupsig: credential not certified by this group")
	// ErrBadSignature is returned by Verify when the message signature
	// does not validate under the credential key.
	ErrBadSignature = errors.New("groupsig: invalid signature")
	// ErrUnknownSerial is returned by Open for serials the judge never
	// issued.
	ErrUnknownSerial = errors.New("groupsig: unknown credential serial")
	// ErrRevoked is returned when a revoked member requests credentials.
	ErrRevoked = errors.New("groupsig: member revoked")
	// ErrNoCredentials is returned by Sign when the pool is empty and no
	// refill source is available.
	ErrNoCredentials = errors.New("groupsig: credential pool exhausted")
	// ErrCredentialRevoked is returned by Verifier.Verify for signatures
	// made with a credential whose serial is on the revocation list.
	ErrCredentialRevoked = errors.New("groupsig: credential revoked")
)

// Credential is the public part of a one-time signing credential: a fresh
// public key certified by the judge. Cert signs CredentialMessage(Serial,
// Pub) under the group master key.
type Credential struct {
	Serial uint64
	Pub    sig.PublicKey
	Cert   []byte
}

// Signature is a group signature: a one-time credential plus a signature by
// the credential key over the message. It reveals no identity; the judge
// can map Serial back to the enrolled member.
type Signature struct {
	Cred Credential
	Sig  []byte
}

// credentialMessagePrefix domain-separates judge certificates from every
// other signed byte string in the protocol.
const credentialMessagePrefix = "whopay/groupsig/credential/1"

// CredentialMessage is the canonical byte string the judge certifies for a
// credential: prefix ‖ serial ‖ credential public key. Exported so batch
// verifiers can build certificate-check jobs without re-deriving the format.
func CredentialMessage(serial uint64, pub sig.PublicKey) []byte {
	return appendCredentialMessage(make([]byte, 0, len(credentialMessagePrefix)+8+len(pub)), serial, pub)
}

func appendCredentialMessage(dst []byte, serial uint64, pub sig.PublicKey) []byte {
	dst = append(dst, credentialMessagePrefix...)
	dst = binary.BigEndian.AppendUint64(dst, serial)
	dst = append(dst, pub...)
	return dst
}

// credMsgBufs recycles credential-message buffers across Verify calls: no
// scheme retains the message bytes past the call (they are hashed), so the
// buffer can go straight back in the pool.
var credMsgBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 128)
		return &b
	},
}

// Verify checks that gs is a valid group signature over msg for the group
// identified by groupPub. It records one group-verification micro-op on the
// suite's recorder (the underlying two plain verifications are deliberately
// not double-counted; Table 3 weighs the group operation as a unit).
func Verify(suite sig.Suite, groupPub sig.PublicKey, msg []byte, gs Signature) error {
	if suite.Rec != nil {
		suite.Rec.RecordGroupVerify()
	}
	bp := credMsgBufs.Get().(*[]byte)
	credMsg := appendCredentialMessage((*bp)[:0], gs.Cred.Serial, gs.Cred.Pub)
	// The certificate and message checks are independent, so hand them to
	// the scheme as one batch: a BatchVerifier scheme (sig.Cached) can
	// overlap them and share its memo. Scheme-level batching leaves the
	// group-verify accounting above as the only recorded micro-op.
	errs := sig.VerifyBatch(suite.Scheme, []sig.VerifyJob{
		{Pub: groupPub, Msg: credMsg, Sig: gs.Cred.Cert},
		{Pub: gs.Cred.Pub, Msg: msg, Sig: gs.Sig},
	})
	*bp = credMsg[:0]
	credMsgBufs.Put(bp)
	if errs[0] != nil {
		return fmt.Errorf("%w: %v", ErrNotMember, errs[0])
	}
	if errs[1] != nil {
		return fmt.Errorf("%w: %v", ErrBadSignature, errs[1])
	}
	return nil
}

// Verifier is the relying-party view of the group: the group public key
// plus a credential revocation list (CRL). The base construction
// deliberately has no CRL — outstanding one-time credentials stay
// verifiable after their owner is revoked, openable to the cheater — but
// entities that learn of revocations (from the judge's verdicts) can refuse
// those credentials going forward. Verifier is also the invalidation seam
// for the verification fast path: OnRevoke hooks a sig.Cached so revoked
// credential keys are purged from the memo. Safe for concurrent use.
type Verifier struct {
	groupPub sig.PublicKey

	mu      sync.RWMutex
	revoked map[uint64]struct{}

	// OnRevoke, when set, is called once per revoked credential public key
	// (outside the Verifier's lock) — wire it to sig.Cached.InvalidateKey.
	OnRevoke func(pub sig.PublicKey)
}

// NewVerifier creates a Verifier for the group identified by groupPub with
// an empty revocation list.
func NewVerifier(groupPub sig.PublicKey) *Verifier {
	return &Verifier{
		groupPub: groupPub.Clone(),
		revoked:  make(map[uint64]struct{}),
	}
}

// GroupPublicKey returns the group public key signatures are checked under.
func (v *Verifier) GroupPublicKey() sig.PublicKey { return v.groupPub.Clone() }

// Revoke adds credential serials to the CRL and runs the OnRevoke hook for
// each corresponding public key (pubs is index-aligned with serials; a
// shorter pubs slice just skips the hook for the tail).
func (v *Verifier) Revoke(serials []uint64, pubs []sig.PublicKey) {
	v.mu.Lock()
	for _, s := range serials {
		v.revoked[s] = struct{}{}
	}
	v.mu.Unlock()
	if v.OnRevoke != nil {
		for _, pub := range pubs {
			v.OnRevoke(pub)
		}
	}
}

// IsRevoked reports whether a credential serial is on the CRL.
func (v *Verifier) IsRevoked(serial uint64) bool {
	v.mu.RLock()
	_, ok := v.revoked[serial]
	v.mu.RUnlock()
	return ok
}

// Verify checks gs over msg like the package-level Verify, but first rejects
// credentials on the CRL. The CRL check precedes all cryptography — and in
// particular any memoized positive result — so revocation takes effect
// immediately even for signatures that verified before the revocation.
func (v *Verifier) Verify(suite sig.Suite, msg []byte, gs Signature) error {
	if v.IsRevoked(gs.Cred.Serial) {
		if suite.Rec != nil {
			suite.Rec.RecordGroupVerify()
		}
		return fmt.Errorf("%w: serial %d", ErrCredentialRevoked, gs.Cred.Serial)
	}
	return Verify(suite, v.groupPub, msg, gs)
}

// secretCredential pairs a credential with its private key; it never leaves
// the member.
type secretCredential struct {
	cred Credential
	priv sig.PrivateKey
}

// IssuedCredential is the transferable form of a credential plus its
// private key, used when enrollment happens over a network (the judge
// issues, the member imports). Transport confidentiality is the caller's
// problem: anyone who reads Priv can sign as the member.
type IssuedCredential struct {
	Cred Credential
	Priv sig.PrivateKey
}

// MemberKey is a member's group private key: a pool of one-time credentials
// plus a refill channel back to the judge. Safe for concurrent use.
type MemberKey struct {
	identity string
	groupPub sig.PublicKey

	mu     sync.Mutex
	pool   []secretCredential
	refill func(n int) ([]secretCredential, error)
}

// Identity returns the enrolled identity this key was issued to. The
// identity is local to the member and the judge; it is never embedded in
// signatures.
func (mk *MemberKey) Identity() string { return mk.identity }

// GroupPublicKey returns the group public key credentials are certified
// under.
func (mk *MemberKey) GroupPublicKey() sig.PublicKey { return mk.groupPub.Clone() }

// PoolSize reports how many unused credentials remain.
func (mk *MemberKey) PoolSize() int {
	mk.mu.Lock()
	defer mk.mu.Unlock()
	return len(mk.pool)
}

// refillBatch is how many credentials a member fetches when its pool runs
// dry. Larger batches amortize judge round-trips.
const refillBatch = 32

// Sign produces a group signature over msg, consuming one credential. It
// records one group-signing micro-op on the suite's recorder. When the pool
// is empty the member transparently requests a refill from the judge.
func (mk *MemberKey) Sign(suite sig.Suite, msg []byte) (Signature, error) {
	if suite.Rec != nil {
		suite.Rec.RecordGroupSign()
	}
	sc, err := mk.take()
	if err != nil {
		return Signature{}, err
	}
	sigBytes, err := suite.Scheme.Sign(sc.priv, msg)
	if err != nil {
		return Signature{}, fmt.Errorf("groupsig: signing with credential %d: %w", sc.cred.Serial, err)
	}
	return Signature{Cred: sc.cred, Sig: sigBytes}, nil
}

func (mk *MemberKey) take() (secretCredential, error) {
	mk.mu.Lock()
	defer mk.mu.Unlock()
	if len(mk.pool) == 0 {
		if mk.refill == nil {
			return secretCredential{}, ErrNoCredentials
		}
		fresh, err := mk.refill(refillBatch)
		if err != nil {
			return secretCredential{}, fmt.Errorf("groupsig: refilling credentials: %w", err)
		}
		mk.pool = fresh
	}
	sc := mk.pool[len(mk.pool)-1]
	mk.pool = mk.pool[:len(mk.pool)-1]
	return sc, nil
}

// Manager is the judge-side group manager: it enrolls members, issues
// credentials, and opens signatures. Safe for concurrent use.
type Manager struct {
	scheme sig.Scheme
	master sig.KeyPair

	mu       sync.Mutex
	serials  map[uint64]issuedCredential // credential serial -> issuance record
	enrolled map[string]bool
	revoked  map[string]bool
	next     uint64
}

// issuedCredential is the judge's private record of one minted credential:
// who it was issued to, and its public key so revocation can name the keys
// relying parties should forget.
type issuedCredential struct {
	identity string
	pub      sig.PublicKey
}

// NewManager creates a group with a fresh master key under scheme.
func NewManager(scheme sig.Scheme) (*Manager, error) {
	master, err := scheme.GenerateKey()
	if err != nil {
		return nil, fmt.Errorf("groupsig: generating master key: %w", err)
	}
	return &Manager{
		scheme:   scheme,
		master:   master,
		serials:  make(map[uint64]issuedCredential),
		enrolled: make(map[string]bool),
		revoked:  make(map[string]bool),
	}, nil
}

// GroupPublicKey returns the master public key verifiers use.
func (m *Manager) GroupPublicKey() sig.PublicKey { return m.master.Public.Clone() }

// Enroll registers identity with the group and returns its member key,
// pre-charged with poolSize one-time credentials. Enrolling the same
// identity again yields a fresh key (e.g. after device loss); old unused
// credentials remain openable to the same identity.
func (m *Manager) Enroll(identity string, poolSize int) (*MemberKey, error) {
	if identity == "" {
		return nil, errors.New("groupsig: empty identity")
	}
	m.mu.Lock()
	if m.revoked[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("enrolling %q: %w", identity, ErrRevoked)
	}
	m.enrolled[identity] = true
	m.mu.Unlock()

	mk := &MemberKey{
		identity: identity,
		groupPub: m.master.Public.Clone(),
		refill:   func(n int) ([]secretCredential, error) { return m.issue(identity, n) },
	}
	pool, err := m.issue(identity, poolSize)
	if err != nil {
		return nil, err
	}
	mk.pool = pool
	return mk, nil
}

// issue mints n one-time credentials for identity.
func (m *Manager) issue(identity string, n int) ([]secretCredential, error) {
	m.mu.Lock()
	if m.revoked[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("issuing to %q: %w", identity, ErrRevoked)
	}
	if !m.enrolled[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("groupsig: %q not enrolled", identity)
	}
	base := m.next
	m.next += uint64(n)
	m.mu.Unlock()

	out := make([]secretCredential, 0, n)
	for i := 0; i < n; i++ {
		serial := base + uint64(i)
		kp, err := m.scheme.GenerateKey()
		if err != nil {
			return nil, fmt.Errorf("groupsig: credential keygen: %w", err)
		}
		cert, err := m.scheme.Sign(m.master.Private, CredentialMessage(serial, kp.Public))
		if err != nil {
			return nil, fmt.Errorf("groupsig: certifying credential: %w", err)
		}
		out = append(out, secretCredential{
			cred: Credential{Serial: serial, Pub: kp.Public, Cert: cert},
			priv: kp.Private,
		})
	}
	m.mu.Lock()
	for _, sc := range out {
		m.serials[sc.cred.Serial] = issuedCredential{identity: identity, pub: sc.cred.Pub}
	}
	m.mu.Unlock()
	return out, nil
}

// IssueCredentials mints n one-time credentials for an enrolled identity
// in transferable form (remote enrollment / refill).
func (m *Manager) IssueCredentials(identity string, n int) ([]IssuedCredential, error) {
	secrets, err := m.issue(identity, n)
	if err != nil {
		return nil, err
	}
	out := make([]IssuedCredential, len(secrets))
	for i, sc := range secrets {
		out[i] = IssuedCredential{Cred: sc.cred, Priv: sc.priv}
	}
	return out, nil
}

// EnrollRemote registers identity and returns its initial credentials in
// transferable form; combine with NewMemberKey on the member side.
func (m *Manager) EnrollRemote(identity string, poolSize int) ([]IssuedCredential, error) {
	if identity == "" {
		return nil, errors.New("groupsig: empty identity")
	}
	m.mu.Lock()
	if m.revoked[identity] {
		m.mu.Unlock()
		return nil, fmt.Errorf("enrolling %q: %w", identity, ErrRevoked)
	}
	m.enrolled[identity] = true
	m.mu.Unlock()
	return m.IssueCredentials(identity, poolSize)
}

// NewMemberKey assembles a member key from remotely issued credentials.
// refill (may be nil) is called when the pool runs dry — typically an RPC
// back to the judge.
func NewMemberKey(identity string, groupPub sig.PublicKey, creds []IssuedCredential, refill func(n int) ([]IssuedCredential, error)) *MemberKey {
	mk := &MemberKey{identity: identity, groupPub: groupPub.Clone()}
	mk.pool = importCredentials(creds)
	if refill != nil {
		mk.refill = func(n int) ([]secretCredential, error) {
			fresh, err := refill(n)
			if err != nil {
				return nil, err
			}
			return importCredentials(fresh), nil
		}
	}
	return mk
}

func importCredentials(creds []IssuedCredential) []secretCredential {
	out := make([]secretCredential, len(creds))
	for i, ic := range creds {
		out[i] = secretCredential{cred: ic.Cred, priv: ic.Priv}
	}
	return out
}

// Open reveals the identity behind a group signature. It first verifies the
// signature so a forged serial cannot frame an innocent member. This is the
// fairness operation: the paper's judge performs it only on transactions
// under investigation and learns nothing about others.
func (m *Manager) Open(msg []byte, gs Signature) (string, error) {
	if err := Verify(sig.Suite{Scheme: m.scheme}, m.master.Public, msg, gs); err != nil {
		return "", fmt.Errorf("groupsig: refusing to open unverified signature: %w", err)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.serials[gs.Cred.Serial]
	if !ok {
		return "", ErrUnknownSerial
	}
	return rec.identity, nil
}

// Revoke bars identity from obtaining further credentials and returns the
// serials and public keys of every credential already issued to it (index-
// aligned). Outstanding credentials remain verifiable under the base
// construction — every use stays openable to the revoked identity — but the
// returned lists let relying parties feed a Verifier CRL and invalidate
// verification caches so those credentials are refused going forward.
func (m *Manager) Revoke(identity string) (serials []uint64, pubs []sig.PublicKey) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.revoked[identity] = true
	for serial, rec := range m.serials {
		if rec.identity == identity {
			serials = append(serials, serial)
			pubs = append(pubs, rec.pub)
		}
	}
	return serials, pubs
}

// IsRevoked reports whether identity has been revoked.
func (m *Manager) IsRevoked(identity string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.revoked[identity]
}

// escrowChunk is the number of key bytes per Shamir secret; it keeps every
// chunk strictly below the 256-bit field prime regardless of content.
const escrowChunk = 31

// KeyShare is one judge's escrow share of a master key: one Shamir share
// per 31-byte chunk of the key.
type KeyShare struct {
	Chunks []shamir.Share
}

// EscrowMasterKey splits the master private key into n key shares with
// threshold k (paper Section 3.2: divide the master key among N judges via
// Shamir so at least K must cooperate to recover it). Keys longer than 31
// bytes are split chunk-wise; each chunk is an independent Shamir instance,
// so the threshold property holds for the whole key.
func (m *Manager) EscrowMasterKey(k, n int) ([]KeyShare, error) {
	priv := m.master.Private
	out := make([]KeyShare, n)
	for off := 0; off < len(priv); off += escrowChunk {
		end := off + escrowChunk
		if end > len(priv) {
			end = len(priv)
		}
		shares, err := shamir.Split(priv[off:end], k, n)
		if err != nil {
			return nil, fmt.Errorf("groupsig: escrowing key chunk at %d: %w", off, err)
		}
		for i := range out {
			out[i].Chunks = append(out[i].Chunks, shares[i])
		}
	}
	return out, nil
}

// RecoverMasterKey reconstructs a master private key from at least k escrow
// key shares. privLen must be the scheme's private key length.
func RecoverMasterKey(shares []KeyShare, privLen int) (sig.PrivateKey, error) {
	if len(shares) == 0 {
		return nil, errors.New("groupsig: no escrow shares")
	}
	numChunks := len(shares[0].Chunks)
	for _, s := range shares {
		if len(s.Chunks) != numChunks {
			return nil, errors.New("groupsig: escrow shares have mismatched chunk counts")
		}
	}
	priv := make(sig.PrivateKey, 0, privLen)
	for c := 0; c < numChunks; c++ {
		chunkLen := escrowChunk
		if c == numChunks-1 {
			chunkLen = privLen - c*escrowChunk
		}
		if chunkLen <= 0 {
			return nil, errors.New("groupsig: privLen inconsistent with share chunk count")
		}
		chunkShares := make([]shamir.Share, len(shares))
		for i, s := range shares {
			chunkShares[i] = s.Chunks[c]
		}
		raw, err := shamir.Combine(chunkShares, chunkLen)
		if err != nil {
			return nil, fmt.Errorf("groupsig: recovering key chunk %d: %w", c, err)
		}
		priv = append(priv, raw...)
	}
	return priv, nil
}
