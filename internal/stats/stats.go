// Package stats provides the small series/table toolkit the benchmark
// harness uses to emit every figure's data as CSV and quick ASCII plots.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Series is one named line on a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Y) }

// Figure is a set of series sharing an x-axis — one paper figure.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries registers (or retrieves) a named series.
func (f *Figure) AddSeries(name string) *Series {
	for _, s := range f.Series {
		if s.Name == name {
			return s
		}
	}
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// CSV renders the figure as comma-separated values: one x column, one
// column per series. Series are aligned by x value (union of all x's).
func (f *Figure) CSV() string {
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			xs[x] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)

	var b strings.Builder
	b.WriteString(csvEscape(f.XLabel))
	for _, s := range f.Series {
		b.WriteByte(',')
		b.WriteString(csvEscape(s.Name))
	}
	b.WriteByte('\n')
	for _, x := range sorted {
		fmt.Fprintf(&b, "%g", x)
		for _, s := range f.Series {
			b.WriteByte(',')
			if y, ok := lookup(s, x); ok {
				fmt.Fprintf(&b, "%g", y)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func lookup(s *Series, x float64) (float64, bool) {
	for i, sx := range s.X {
		if sx == x {
			return s.Y[i], true
		}
	}
	return 0, false
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// plotGlyphs mark successive series in ASCII plots.
var plotGlyphs = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// ASCII renders a quick terminal plot of the figure. It is deliberately
// simple: linear axes, one glyph per series, legend below.
func (f *Figure) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1)
	empty := true
	for _, s := range f.Series {
		for i := range s.Y {
			empty = false
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if empty {
		return f.Title + ": (no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range f.Series {
		glyph := plotGlyphs[si%len(plotGlyphs)]
		for i := range s.Y {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(height-1))
			if row >= 0 && row < height && col >= 0 && col < width {
				grid[row][col] = glyph
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", f.Title)
	fmt.Fprintf(&b, "%-10.3g ┤%s\n", maxY, string(grid[0]))
	for i := 1; i < height-1; i++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[i]))
	}
	fmt.Fprintf(&b, "%-10.3g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s  %-g%s%g  (%s)\n", "", minX,
		strings.Repeat(" ", max(1, width-len(fmt.Sprintf("%g%g", minX, maxX)))), maxX, f.XLabel)
	for si, s := range f.Series {
		fmt.Fprintf(&b, "    %c %s\n", plotGlyphs[si%len(plotGlyphs)], s.Name)
	}
	return b.String()
}

// Mean averages ys (0 for empty input).
func Mean(ys []float64) float64 {
	if len(ys) == 0 {
		return 0
	}
	var t float64
	for _, y := range ys {
		t += y
	}
	return t / float64(len(ys))
}

// Monotone classifications for shape assertions.
type Monotone int

// Shape classes for a series.
const (
	Flat Monotone = iota
	Increasing
	Decreasing
	Unimodal // rises then falls
	Other
)

// Classify determines a series' coarse shape with a relative tolerance:
// moves smaller than tol*max(|y|) are ignored.
func Classify(ys []float64, tol float64) Monotone {
	if len(ys) < 2 {
		return Flat
	}
	maxAbs := 0.0
	for _, y := range ys {
		maxAbs = math.Max(maxAbs, math.Abs(y))
	}
	eps := tol * maxAbs
	ups, downs := 0, 0
	// Track direction changes on significant moves only.
	dirs := []int{}
	for i := 1; i < len(ys); i++ {
		d := ys[i] - ys[i-1]
		switch {
		case d > eps:
			ups++
			if len(dirs) == 0 || dirs[len(dirs)-1] != 1 {
				dirs = append(dirs, 1)
			}
		case d < -eps:
			downs++
			if len(dirs) == 0 || dirs[len(dirs)-1] != -1 {
				dirs = append(dirs, -1)
			}
		}
	}
	switch {
	case ups == 0 && downs == 0:
		return Flat
	case downs == 0:
		return Increasing
	case ups == 0:
		return Decreasing
	case len(dirs) == 2 && dirs[0] == 1 && dirs[1] == -1:
		return Unimodal
	default:
		return Other
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
