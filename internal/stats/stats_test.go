package stats

import (
	"strings"
	"testing"
)

func TestFigureCSV(t *testing.T) {
	f := NewFigure("Broker Load", "mean session length (hrs)", "operations")
	purchases := f.AddSeries("purchases")
	purchases.Add(1, 100)
	purchases.Add(2, 200)
	syncs := f.AddSeries("syncs")
	syncs.Add(1, 50)
	syncs.Add(4, 10)
	csv := f.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "mean session length (hrs),purchases,syncs" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 4 { // x ∈ {1, 2, 4}
		t.Fatalf("rows = %d: %q", len(lines), csv)
	}
	if lines[1] != "1,100,50" {
		t.Fatalf("row1 = %q", lines[1])
	}
	if lines[2] != "2,200," {
		t.Fatalf("row2 = %q (missing values stay empty)", lines[2])
	}
}

func TestAddSeriesIdempotent(t *testing.T) {
	f := NewFigure("t", "x", "y")
	a := f.AddSeries("s")
	b := f.AddSeries("s")
	if a != b {
		t.Fatal("AddSeries created a duplicate")
	}
	a.Add(1, 2)
	if b.Len() != 1 {
		t.Fatal("series not shared")
	}
}

func TestCSVEscaping(t *testing.T) {
	f := NewFigure("t", `x "hrs", really`, "y")
	f.AddSeries("a,b").Add(1, 2)
	csv := f.CSV()
	if !strings.Contains(csv, `"x ""hrs"", really"`) || !strings.Contains(csv, `"a,b"`) {
		t.Fatalf("escaping wrong: %q", csv)
	}
}

func TestASCIIPlot(t *testing.T) {
	f := NewFigure("Broker CPU Load", "hrs", "units")
	s := f.AddSeries("policy I")
	for i := 1; i <= 8; i++ {
		s.Add(float64(i), float64(i*i))
	}
	out := f.ASCII(40, 10)
	if !strings.Contains(out, "Broker CPU Load") || !strings.Contains(out, "policy I") {
		t.Fatalf("plot missing pieces:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatal("no data glyphs plotted")
	}
}

func TestASCIIPlotEmpty(t *testing.T) {
	f := NewFigure("empty", "x", "y")
	if !strings.Contains(f.ASCII(30, 8), "no data") {
		t.Fatal("empty plot should say so")
	}
}

func TestASCIIPlotClampsSize(t *testing.T) {
	f := NewFigure("tiny", "x", "y")
	f.AddSeries("s").Add(1, 1)
	if out := f.ASCII(1, 1); out == "" {
		t.Fatal("clamped plot empty")
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil)")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		ys   []float64
		want Monotone
	}{
		{"flat", []float64{5, 5, 5}, Flat},
		{"increasing", []float64{1, 2, 3, 10}, Increasing},
		{"decreasing", []float64{10, 4, 2, 1}, Decreasing},
		{"unimodal", []float64{1, 5, 9, 6, 2}, Unimodal},
		{"noise within tol is flat", []float64{100, 101, 99, 100}, Flat},
		{"vee is other", []float64{9, 2, 9}, Other},
		{"single point", []float64{3}, Flat},
		{"increasing with small dips", []float64{10, 100, 99, 200, 400}, Increasing},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Classify(tc.ys, 0.05); got != tc.want {
				t.Fatalf("Classify(%v) = %v, want %v", tc.ys, got, tc.want)
			}
		})
	}
}
