package federation

import (
	"testing"
	"time"
)

// tickClock is a manually advanced clock for lease tests.
type tickClock struct{ t time.Time }

func (c *tickClock) now() time.Time          { return c.t }
func (c *tickClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTickClock() *tickClock               { return &tickClock{t: time.Unix(1_700_000_000, 0)} }

func TestArbiterGrantAndFence(t *testing.T) {
	clk := newTickClock()
	a := NewArbiter(time.Second, clk.now)

	e1, ok := a.Acquire("a")
	if !ok || e1 != 1 {
		t.Fatalf("first acquire: epoch %d ok %v, want 1 true", e1, ok)
	}
	// A live lease excludes everyone else.
	if _, ok := a.Acquire("b"); ok {
		t.Fatal("second holder acquired a live lease")
	}
	// The holder re-acquiring keeps its epoch.
	if e, ok := a.Acquire("a"); !ok || e != e1 {
		t.Fatalf("holder re-acquire: epoch %d ok %v, want %d true", e, ok, e1)
	}
	if !a.Renew("a", e1) {
		t.Fatal("holder could not renew a live lease")
	}
	// Renewal with a stale epoch must fail — the fencing property.
	if a.Renew("a", e1+1) {
		t.Fatal("renewal with wrong epoch succeeded")
	}

	// Expiry: the holder stops renewing; after TTL the lease is free and
	// the next holder gets a higher epoch.
	clk.advance(1100 * time.Millisecond)
	if _, _, held := a.Holder(); held {
		t.Fatal("expired lease still reported held")
	}
	if a.Renew("a", e1) {
		t.Fatal("renewal of an expired lease succeeded")
	}
	e2, ok := a.Acquire("b")
	if !ok || e2 != e1+1 {
		t.Fatalf("takeover: epoch %d ok %v, want %d true", e2, ok, e1+1)
	}
}

func TestArbiterRelease(t *testing.T) {
	clk := newTickClock()
	a := NewArbiter(time.Second, clk.now)
	if _, ok := a.Acquire("a"); !ok {
		t.Fatal("acquire failed")
	}
	// Releasing someone else's lease is a no-op.
	a.Release("b")
	if who, _, held := a.Holder(); !held || who != "a" {
		t.Fatalf("foreign release disturbed the lease: %q %v", who, held)
	}
	a.Release("a")
	if _, _, held := a.Holder(); held {
		t.Fatal("lease held after release")
	}
	// Immediate takeover, no TTL wait.
	if e, ok := a.Acquire("b"); !ok || e != 2 {
		t.Fatalf("post-release acquire: epoch %d ok %v, want 2 true", e, ok)
	}
}
