package federation

import (
	"sync"
	"time"
)

// Arbiter is a shard's lease authority: at most one node holds the lease at
// a time, each grant carries a monotonically increasing epoch, and a holder
// that stops renewing loses the lease after TTL — the failure detector that
// turns a dead leader into a promotable vacancy. This implementation is the
// in-process one (the cluster embeds one per shard); the epoch discipline is
// what a consensus-backed arbiter would export too.
type Arbiter struct {
	ttl   time.Duration
	clock func() time.Time

	mu     sync.Mutex
	holder string
	epoch  uint64
	expiry time.Time
}

// NewArbiter creates a lease arbiter with the given TTL. clock nil means
// time.Now.
func NewArbiter(ttl time.Duration, clock func() time.Time) *Arbiter {
	if clock == nil {
		clock = time.Now
	}
	return &Arbiter{ttl: ttl, clock: clock}
}

// Acquire grants (or renews) the lease to who when it is free, expired, or
// already theirs. A change of holder bumps the epoch — the fencing token
// followers use to reject a deposed leader's stream.
func (a *Arbiter) Acquire(who string) (epoch uint64, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock()
	if a.holder != "" && a.holder != who && now.Before(a.expiry) {
		return 0, false
	}
	if a.holder != who {
		a.epoch++
		a.holder = who
	}
	a.expiry = now.Add(a.ttl)
	return a.epoch, true
}

// Renew extends the lease iff who still holds it at the given epoch.
func (a *Arbiter) Renew(who string, epoch uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.holder != who || a.epoch != epoch || a.clock().After(a.expiry) {
		return false
	}
	a.expiry = a.clock().Add(a.ttl)
	return true
}

// Release frees the lease iff who holds it (clean shutdown; a crash just
// stops renewing and the TTL does the rest).
func (a *Arbiter) Release(who string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.holder == who {
		a.holder = ""
		a.expiry = time.Time{}
	}
}

// Holder reports the current live holder, if any.
func (a *Arbiter) Holder() (who string, epoch uint64, held bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.holder == "" || a.clock().After(a.expiry) {
		return "", 0, false
	}
	return a.holder, a.epoch, true
}
