package federation

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/wal"
)

// Node is one replica of one broker shard. Every node listens on its own
// address from birth; what changes over its life is the role behind that
// address. A leader runs a full core.Broker whose WAL streams to the shard's
// other replicas; a follower mirrors the leader's log byte-for-byte and
// rejects protocol traffic with ErrNotLeader redirects. Promotion recovers a
// broker from the mirror — core.RecoverBroker replays the same journal the
// leader wrote, so the promoted broker has the same signing key and the same
// committed state.
type Node struct {
	shard   int
	replica int
	name    string
	dir     string
	addr    bus.Address
	cluster *Cluster
	fs      wal.FS

	ep bus.Endpoint

	// epoch is the lease epoch while leading; read lock-free by onAppend.
	epoch atomic.Uint64

	// inner holds the leader broker's handler, installed through nodeNet.
	inner atomic.Value // bus.Handler

	// alive flips false at shutdown so leaders stop streaming to us.
	alive atomic.Bool

	// looping is set once the lease loop goroutine exists (shutdown only
	// waits for a loop that was actually started).
	looping atomic.Bool

	mu        sync.Mutex
	broker    *core.Broker
	seenEpoch uint64           // follower fencing: highest leader epoch seen
	sizes     map[string]int64 // mirror file sizes (follower)
	curName   string           // cached append handle for the hot segment
	curFile   wal.File
	lastErr   error
	closed    bool

	lagMu sync.Mutex
	lag   map[bus.Address]int64 // leader: bytes sent but unacknowledged

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newNode creates a follower node listening on its address.
func newNode(c *Cluster, shard, replica int) (*Node, error) {
	n := &Node{
		shard:   shard,
		replica: replica,
		name:    fmt.Sprintf("s%dr%d", shard, replica),
		dir:     filepath.Join(c.cfg.Wal.Dir, fmt.Sprintf("shard%d", shard), fmt.Sprintf("replica%d", replica)),
		cluster: c,
		fs:      c.cfg.Wal.FS,
		sizes:   map[string]int64{},
		lag:     map[bus.Address]int64{},
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if n.fs == nil {
		n.fs = wal.OS()
	}
	if err := n.fs.MkdirAll(n.dir); err != nil {
		return nil, fmt.Errorf("federation: node dir: %w", err)
	}
	addr := bus.Address(fmt.Sprintf("%s-%s", c.cfg.AddrPrefix, n.name))
	if c.cfg.AddrFor != nil {
		addr = c.cfg.AddrFor(shard, replica)
	}
	ep, err := c.cfg.Network.Listen(addr, n.handle)
	if err != nil {
		return nil, fmt.Errorf("federation: node listen: %w", err)
	}
	n.ep = ep
	n.addr = ep.Addr() // TCP ":0" binds pick a port
	n.alive.Store(true)
	return n, nil
}

// Addr returns the node's bus address.
func (n *Node) Addr() bus.Address { return n.addr }

// Broker returns the node's broker when it is currently a leader.
func (n *Node) Broker() *core.Broker {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.broker
}

// Err returns the node's last promotion or replication failure.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.lastErr
}

// LagBytes reports the largest unacknowledged byte count across this node's
// followers (zero for followers and fully-caught-up leaders).
func (n *Node) LagBytes() int64 {
	n.lagMu.Lock()
	defer n.lagMu.Unlock()
	var max int64
	for _, v := range n.lag {
		if v > max {
			max = v
		}
	}
	return max
}

// --- request dispatch -----------------------------------------------------

// handle serves the node's address: replication messages always, protocol
// traffic only while this node leads its shard (with a live lease — a
// deposed leader that has not noticed yet still refuses, the fencing that
// keeps two brokers from serving one shard).
func (n *Node) handle(from bus.Address, msg any) (any, error) {
	switch m := msg.(type) {
	case FrameMsg:
		return n.applyFrame(m)
	case StateMsg:
		return n.applyState(m)
	}
	h, _ := n.inner.Load().(bus.Handler)
	if h == nil || !n.leads() {
		return nil, n.notLeaderErr()
	}
	return h(from, msg)
}

// leads reports whether this node holds its shard's lease right now.
func (n *Node) leads() bool {
	who, _, held := n.cluster.arbiter(n.shard).Holder()
	return held && who == n.name
}

// notLeaderErr builds the ErrNotLeader rejection, with a redirect hint to
// the current leader when the cluster knows one.
func (n *Node) notLeaderErr() error {
	err := fmt.Errorf("%w: shard %d replica %d", core.ErrNotLeader, n.shard, n.replica)
	if addr, ok := n.cluster.Leader(n.shard); ok && addr != n.addr {
		err = bus.WithRedirect(err, addr)
	}
	return err
}

// --- follower: mirror the leader's log ------------------------------------

// applyFrame appends one streamed WAL frame to the mirror. The expected
// offset check is the integrity guarantee: a frame landing anywhere but the
// end of the mirror means the mirror diverged, and the follower asks for a
// full resync rather than guessing.
func (n *Node) applyFrame(m FrameMsg) (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("federation: node closed")
	}
	if n.broker != nil {
		return nil, fmt.Errorf("federation: shard %d replica %d is a leader, not a mirror", n.shard, n.replica)
	}
	if m.Epoch < n.seenEpoch {
		return nil, fmt.Errorf("federation: frame from deposed leader epoch %d (seen %d)", m.Epoch, n.seenEpoch)
	}
	n.seenEpoch = m.Epoch
	name := wal.SegmentName(m.Seg)
	size := n.sizes[name]
	switch {
	case m.Off == size:
		// The expected append point.
	case m.Off+int64(len(m.Frame)) <= size:
		return FrameAck{}, nil // duplicate after a resync overlap
	default:
		n.dropCurLocked()
		return FrameAck{Resync: true}, nil
	}
	if err := n.appendMirrorLocked(name, m.Frame, m.Off == 0); err != nil {
		n.lastErr = err
		n.dropCurLocked()
		return FrameAck{Resync: true}, nil
	}
	n.sizes[name] = size + int64(len(m.Frame))
	return FrameAck{}, nil
}

// appendMirrorLocked writes frame bytes at the end of the named mirror file,
// caching the hot segment's handle. fresh means the leader just created the
// segment, so the mirror truncates too.
func (n *Node) appendMirrorLocked(name string, frame []byte, fresh bool) error {
	if n.curName != name {
		n.dropCurLocked()
		path := filepath.Join(n.dir, name)
		var f wal.File
		var err error
		if fresh {
			f, err = n.fs.Create(path)
		} else {
			f, err = n.fs.OpenAppend(path)
		}
		if err != nil {
			return err
		}
		n.curName, n.curFile = name, f
	}
	if _, err := n.curFile.Write(frame); err != nil {
		return err
	}
	if n.cluster.cfg.Wal.Policy == wal.FsyncAlways {
		return n.curFile.Sync()
	}
	return nil
}

// dropCurLocked closes the cached append handle (syncing what the OS holds).
func (n *Node) dropCurLocked() {
	if n.curFile != nil {
		_ = n.curFile.Sync()
		_ = n.curFile.Close()
	}
	n.curName, n.curFile = "", nil
}

// applyState replaces the whole mirror with the leader's file set — the
// catch-up path for fresh replicas and diverged mirrors.
func (n *Node) applyState(m StateMsg) (any, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, errors.New("federation: node closed")
	}
	if n.broker != nil {
		return nil, fmt.Errorf("federation: shard %d replica %d is a leader, not a mirror", n.shard, n.replica)
	}
	if m.Epoch < n.seenEpoch {
		return nil, fmt.Errorf("federation: state from deposed leader epoch %d (seen %d)", m.Epoch, n.seenEpoch)
	}
	n.seenEpoch = m.Epoch
	n.dropCurLocked()
	names, err := n.fs.ReadDir(n.dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if wal.IsLogFile(name) {
			if err := n.fs.Remove(filepath.Join(n.dir, name)); err != nil {
				return nil, err
			}
		}
	}
	n.sizes = make(map[string]int64, len(m.Files))
	for _, sf := range m.Files {
		if sf.Name != filepath.Base(sf.Name) || !wal.IsLogFile(sf.Name) {
			return nil, fmt.Errorf("federation: bad state file name %q", sf.Name)
		}
		f, err := n.fs.Create(filepath.Join(n.dir, sf.Name))
		if err != nil {
			return nil, err
		}
		if _, err := f.Write(sf.Data); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		n.sizes[sf.Name] = int64(len(sf.Data))
	}
	return StateAck{}, nil
}

// --- leader: stream the log -----------------------------------------------

// onAppend is the leader's wal.Config.OnAppend hook: push the committed
// frame to every follower before the append (and therefore the protocol
// response) completes. Runs inside the log's write lock, so followers see
// frames in total order; it must not take n.mu (the broker's request path
// owns it through handle) and must not call back into the log.
func (n *Node) onAppend(seg uint64, off int64, frame []byte) {
	msg := FrameMsg{Shard: n.shard, Epoch: n.epoch.Load(), Seg: seg, Off: off, Frame: frame}
	for _, to := range n.cluster.followerAddrs(n.shard, n.replica) {
		n.pushFrame(to, msg)
	}
}

// pushFrame delivers one frame to one follower, falling back to a full-state
// resync when the follower reports divergence. Failures only accrue lag —
// the follower will resync on the next frame.
func (n *Node) pushFrame(to bus.Address, msg FrameMsg) {
	resp, err := n.ep.Call(to, msg)
	if err != nil {
		n.addLag(to, int64(len(msg.Frame)))
		return
	}
	ack, ok := resp.(FrameAck)
	if !ok {
		n.addLag(to, int64(len(msg.Frame)))
		return
	}
	if ack.Resync {
		n.resyncFollower(to, msg.Epoch)
		return
	}
	n.clearLag(to)
}

// resyncFollower ships the full live file set to one follower.
func (n *Node) resyncFollower(to bus.Address, epoch uint64) {
	files, err := wal.ListFiles(n.fs, n.dir)
	if err != nil {
		n.setErr(err)
		return
	}
	st := StateMsg{Shard: n.shard, Epoch: epoch}
	var total int64
	for _, fi := range files {
		data, err := wal.ReadFileBytes(n.fs, n.dir, fi.Name)
		if err != nil {
			n.setErr(err)
			return
		}
		st.Files = append(st.Files, StateFile{Name: fi.Name, Data: data})
		total += int64(len(data))
	}
	if _, err := n.ep.Call(to, st); err != nil {
		n.addLag(to, total)
		return
	}
	n.clearLag(to)
}

func (n *Node) addLag(to bus.Address, bytes int64) {
	n.lagMu.Lock()
	n.lag[to] += bytes
	n.lagMu.Unlock()
}

func (n *Node) clearLag(to bus.Address) {
	n.lagMu.Lock()
	n.lag[to] = 0
	n.lagMu.Unlock()
}

func (n *Node) setErr(err error) {
	n.mu.Lock()
	if n.lastErr == nil {
		n.lastErr = err
	}
	n.mu.Unlock()
}

// --- leases and promotion -------------------------------------------------

// run is the node's lease loop: leaders renew, followers watch for a vacancy
// and promote when they win it.
func (n *Node) run(heartbeat time.Duration) {
	defer close(n.done)
	t := time.NewTicker(heartbeat)
	defer t.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-t.C:
		}
		n.tick()
	}
}

func (n *Node) tick() {
	arb := n.cluster.arbiter(n.shard)
	n.mu.Lock()
	leading := n.broker != nil
	n.mu.Unlock()
	if leading {
		if !arb.Renew(n.name, n.epoch.Load()) {
			n.stepDown()
		}
		return
	}
	if epoch, ok := arb.Acquire(n.name); ok {
		if err := n.promote(epoch, true); err != nil {
			arb.Release(n.name)
			n.setErr(err)
		}
	}
}

// tryLead is the deterministic boot path: acquire the (fresh) lease and
// promote without counting a failover.
func (n *Node) tryLead() error {
	epoch, ok := n.cluster.arbiter(n.shard).Acquire(n.name)
	if !ok {
		return fmt.Errorf("federation: shard %d lease already held", n.shard)
	}
	return n.promote(epoch, false)
}

// promote turns this node into its shard's leader: recover a full broker
// from the local (mirrored) journal — or mint a fresh one on first boot —
// and publish leadership. Holding n.mu for the duration blocks stray frames
// from racing the recovery replay.
func (n *Node) promote(epoch uint64, failover bool) error {
	start := time.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed || n.broker != nil {
		return nil
	}
	n.dropCurLocked()
	n.epoch.Store(epoch)
	cfg := n.cluster.brokerConfig(n)
	files, err := wal.ListFiles(n.fs, n.dir)
	if err != nil {
		return err
	}
	var b *core.Broker
	if len(files) == 0 {
		b, err = core.NewBroker(cfg)
	} else {
		b, err = core.RecoverBroker(cfg)
	}
	if err != nil {
		return fmt.Errorf("federation: promoting shard %d replica %d: %w", n.shard, n.replica, err)
	}
	n.broker = b
	n.cluster.setLeader(n.shard, n.replica, n.addr, b.PublicKey())
	if failover {
		n.cluster.noteFailover(n.shard, time.Since(start))
	}
	return nil
}

// stepDown closes the broker after a lost lease; the node reverts to
// follower and will resync its mirror from whoever leads next.
func (n *Node) stepDown() {
	n.mu.Lock()
	b := n.broker
	n.broker = nil
	n.sizes = map[string]int64{}
	n.mu.Unlock()
	if b != nil {
		_ = b.Close()
	}
	n.cluster.clearLeader(n.shard, n.addr)
}

// shutdown stops the node. release distinguishes a clean stop (lease freed,
// followers take over immediately) from a kill (the lease expires on its
// own — the failure the TTL exists for).
func (n *Node) shutdown(release bool) {
	n.alive.Store(false)
	n.stopOnce.Do(func() { close(n.stop) })
	if n.looping.Load() {
		<-n.done
	}
	_ = n.ep.Close()
	n.mu.Lock()
	n.closed = true
	n.dropCurLocked()
	b := n.broker
	n.broker = nil
	n.mu.Unlock()
	if b != nil {
		_ = b.Close()
	}
	n.cluster.clearLeader(n.shard, n.addr)
	if release {
		n.cluster.arbiter(n.shard).Release(n.name)
	}
}

// --- the broker's view of the network --------------------------------------

// nodeNet is the bus.Network handed to the node's broker: Listen does not
// bind anything — the node already listens — it installs the broker's
// handler behind the node's gate and returns an endpoint that calls out
// through the node's real one.
type nodeNet struct{ n *Node }

// Listen implements bus.Network.
func (nn nodeNet) Listen(_ bus.Address, h bus.Handler) (bus.Endpoint, error) {
	nn.n.inner.Store(h)
	return nodeEndpoint{n: nn.n}, nil
}

type nodeEndpoint struct{ n *Node }

func (e nodeEndpoint) Addr() bus.Address { return e.n.addr }

func (e nodeEndpoint) Call(to bus.Address, msg any) (any, error) {
	return e.n.ep.Call(to, msg)
}

func (e nodeEndpoint) Close() error {
	e.n.inner.Store(bus.Handler(nil))
	return nil
}
