package federation

import (
	"bytes"
	"reflect"
	"testing"

	"whopay/internal/wire"
)

// TestReplicationWireRoundTrip: each replication message must survive
// encode → decode → re-encode byte-for-byte, populated and zero.
func TestReplicationWireRoundTrip(t *testing.T) {
	RegisterWireTypes()
	msgs := []any{
		FrameMsg{Shard: 3, Epoch: 7, Seg: 12, Off: 4096, Frame: []byte("frame-bytes")},
		FrameMsg{},
		FrameAck{Resync: true},
		FrameAck{},
		StateMsg{Shard: 1, Epoch: 2, Files: []StateFile{
			{Name: "seg-00000001.wal", Data: []byte("abc")},
			{Name: "seg-00000002.wal", Data: nil},
		}},
		StateMsg{},
		StateAck{},
	}
	for _, m := range msgs {
		e, ok := wire.ByValue(m)
		if !ok {
			t.Fatalf("no codec for %T", m)
		}
		first, err := e.Enc(nil, m)
		if err != nil {
			t.Fatalf("encode %T: %v", m, err)
		}
		decoded, err := wire.Decode(e.Tag, first)
		if err != nil {
			t.Fatalf("decode %T: %v", m, err)
		}
		second, err := e.Enc(nil, decoded)
		if err != nil {
			t.Fatalf("re-encode %T: %v", m, err)
		}
		if !bytes.Equal(first, second) {
			t.Errorf("%T: encode→decode→encode not byte-identical", m)
		}
		if reflect.TypeOf(decoded) != reflect.TypeOf(m) {
			t.Errorf("%T decoded to %T", m, decoded)
		}
	}
}

// TestStateMsgMalformedCount: a count field larger than the remaining
// payload must be rejected, not allocated.
func TestStateMsgMalformedCount(t *testing.T) {
	RegisterWireTypes()
	e, ok := wire.ByValue(StateMsg{})
	if !ok {
		t.Fatal("no codec for StateMsg")
	}
	raw, err := e.Enc(nil, StateMsg{Shard: 0, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the trailing file count into an absurd value.
	raw[len(raw)-1] = 0xff
	if _, err := wire.Decode(e.Tag, append(raw, 0xff, 0xff, 0x7f)); err == nil {
		t.Error("decoder accepted a file count exceeding the payload")
	}
}
