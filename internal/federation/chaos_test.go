package federation

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"whopay/internal/core"
)

// TestChaosLeaderKillsMidTransferStorm: concurrent purchase → pay → deposit
// traffic across every shard while both shard leaders are crash-killed in
// turn. The chaos suite's invariants must hold at the end exactly as they do
// for a single broker (PR 1): value conservation (everything minted is
// redeemed exactly once), no accepted double spend, no honest party
// punished, and no coin stuck.
func TestChaosLeaderKillsMidTransferStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm is not -short")
	}
	w := newWorld(t, 2, 2, 100*time.Millisecond)

	const pairs = 3
	const rounds = 12
	type pair struct {
		payer, payee *core.Peer
		payeeID      string
		ref          string
	}
	ps := make([]pair, pairs)
	for i := range ps {
		payerID := fmt.Sprintf("payer-%d", i)
		payeeID := fmt.Sprintf("payee-%d", i)
		ps[i] = pair{
			payer:   w.addPeer(payerID),
			payee:   w.addPeer(payeeID),
			payeeID: payeeID,
			ref:     fmt.Sprintf("till-%d", i),
		}
	}

	// The storm: every pair loops the full coin lifecycle while the killer
	// goroutine takes down each shard's leader mid-flight. The client
	// retry + redirect machinery must absorb both failovers, so every
	// operation is expected to succeed.
	var wg sync.WaitGroup
	for i := range ps {
		wg.Add(1)
		go func(p pair, i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if _, err := p.payer.Purchase(1, false); err != nil {
					t.Errorf("pair %d round %d purchase: %v", i, r, err)
					return
				}
				if _, err := p.payer.Pay(w.peerAddr(p.payeeID), 1, core.PolicyI); err != nil {
					t.Errorf("pair %d round %d pay: %v", i, r, err)
					return
				}
				held := p.payee.HeldCoins()
				if len(held) == 0 {
					t.Errorf("pair %d round %d: payee holds nothing after pay", i, r)
					return
				}
				if err := p.payee.Deposit(held[0], p.ref); err != nil {
					t.Errorf("pair %d round %d deposit: %v", i, r, err)
					return
				}
			}
		}(ps[i], i)
	}

	killerDone := make(chan struct{})
	go func() {
		defer close(killerDone)
		for shard := 0; shard < w.cluster.Shards(); shard++ {
			time.Sleep(60 * time.Millisecond)
			if _, err := w.cluster.KillLeader(shard); err != nil {
				t.Errorf("kill shard %d leader: %v", shard, err)
				return
			}
			if _, err := w.cluster.WaitLeader(shard, 5*time.Second); err != nil {
				t.Errorf("shard %d never re-elected: %v", shard, err)
				return
			}
		}
	}()
	wg.Wait()
	<-killerDone
	if t.Failed() {
		return
	}
	w.drainSettlements(5 * time.Second)

	// Invariant 1 — conservation: everything minted was redeemed exactly
	// once, across all shards.
	const minted = pairs * rounds
	var issued, deposited int64
	for s := 0; s < w.cluster.Shards(); s++ {
		b, _, ok := w.cluster.LeaderBroker(s)
		if !ok {
			t.Fatalf("shard %d leaderless after the storm", s)
		}
		issued += b.IssuedValue()
		deposited += b.DepositedValue()
	}
	if issued != minted {
		t.Errorf("issued %d, want %d: mint count diverged from client view", issued, minted)
	}
	if deposited != minted {
		t.Errorf("deposited %d, want %d: committed deposits lost or duplicated", deposited, minted)
	}

	// Invariant 2 — every till holds exactly its pair's takings, on its
	// home shard only.
	for i := range ps {
		bals := w.balances(ps[i].ref)
		var total int64
		for _, b := range bals {
			total += b
		}
		if total != rounds {
			t.Errorf("till %d total %d, want %d (per shard: %v)", i, total, rounds, bals)
		}
		home := core.ShardOfKey(ps[i].ref, w.cluster.Shards())
		if bals[home] != rounds {
			t.Errorf("till %d: %d credits off the home shard", i, rounds-int(bals[home]))
		}
	}

	// Invariant 3 — no false punishment: honest traffic through two
	// failovers must not synthesize fraud cases.
	for s := 0; s < w.cluster.Shards(); s++ {
		b, _, _ := w.cluster.LeaderBroker(s)
		if cases := b.FraudCases(); len(cases) != 0 {
			t.Errorf("shard %d recorded %d fraud cases during an honest storm: %+v", s, len(cases), cases[0])
		}
	}

	// Invariant 4 — no stuck coins: nothing is left held or owned.
	for i := range ps {
		if v := ps[i].payee.HeldValue(); v != 0 {
			t.Errorf("payee %d stuck holding value %d", i, v)
		}
	}
}
