package federation

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"whopay/internal/bus"
	"whopay/internal/core"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// Defaults for the lease machinery. The TTL is the worst-case leader-death
// detection time, so it bounds failover latency from below; the heartbeat
// divides it so a healthy leader renews several times per TTL.
const (
	DefaultLeaseTTL   = 500 * time.Millisecond
	DefaultAddrPrefix = "fed"
)

// Config describes a federated broker cluster: Shards independent trust-root
// partitions, each replicated Replicas-wide.
type Config struct {
	// Shards and Replicas size the cluster; both default to 1.
	Shards   int
	Replicas int
	// Network carries both client traffic and the replication stream.
	Network bus.Network
	// Broker is the per-shard broker template (Scheme, Directory,
	// GroupPub, Clock, ...). Network, Addr, Persistence, Federation, and
	// Obs are overwritten per node; InitialCredit must be zero.
	Broker core.BrokerConfig
	// Wal is the durability template. Dir is the federation root — each
	// node journals under Dir/shard<i>/replica<j>.
	Wal wal.Config
	// LeaseTTL (default 500ms) is how long a dead leader keeps its lease;
	// Heartbeat (default LeaseTTL/5) is the renew/acquire cadence.
	LeaseTTL  time.Duration
	Heartbeat time.Duration
	// SettleRetry is the cross-shard settlement resend cadence (zero
	// means the core default).
	SettleRetry time.Duration
	// AddrPrefix namespaces node addresses (default "fed"): node (s,r)
	// listens on "<prefix>-s<s>r<r>".
	AddrPrefix string
	// AddrFor, when set, overrides AddrPrefix naming with an explicit
	// listen address per node — "host:0" on a TCP transport, where the
	// bound (ephemeral-port) address becomes the node's identity.
	AddrFor func(shard, replica int) bus.Address
	// Obs, when non-nil, exports federation metrics (replication lag,
	// failover count and latency, current leader) and one health check
	// per shard that fails while the shard has no live leader.
	Obs *obs.Registry
}

// leaderEntry is the cluster's routing-table row for one shard.
type leaderEntry struct {
	known   bool
	replica int
	addr    bus.Address
	pub     sig.PublicKey
}

// Cluster runs Shards×Replicas federation nodes in one process and is the
// routing authority: it implements core.ShardRouter for peers and resolves
// LeaderAddr/ShardPub for the shard brokers' settlement path.
type Cluster struct {
	cfg      Config
	arbiters []*Arbiter
	nodes    [][]*Node

	mu      sync.RWMutex
	leaders []leaderEntry
	closed  bool

	failovers []*obs.Counter
	failoverD []*obs.Histogram
}

// Start boots a cluster: every node comes up as a listening follower first,
// then replica 0 of each shard is promoted deterministically, then the lease
// loops take over.
func Start(cfg Config) (*Cluster, error) {
	if cfg.Network == nil {
		return nil, errors.New("federation: Config.Network is required")
	}
	if cfg.Wal.Dir == "" {
		return nil, errors.New("federation: Config.Wal.Dir is required")
	}
	if cfg.Broker.InitialCredit != 0 {
		return nil, errors.New("federation: Broker.InitialCredit must be zero under federation")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 1
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 5
	}
	if cfg.AddrPrefix == "" {
		cfg.AddrPrefix = DefaultAddrPrefix
	}

	c := &Cluster{
		cfg:      cfg,
		arbiters: make([]*Arbiter, cfg.Shards),
		nodes:    make([][]*Node, cfg.Shards),
		leaders:  make([]leaderEntry, cfg.Shards),
	}
	// Leases run on wall-clock time regardless of the broker's protocol
	// clock: liveness detection is infrastructure, not protocol state.
	for s := range c.arbiters {
		c.arbiters[s] = NewArbiter(cfg.LeaseTTL, nil)
	}
	for s := 0; s < cfg.Shards; s++ {
		c.nodes[s] = make([]*Node, cfg.Replicas)
		for r := 0; r < cfg.Replicas; r++ {
			n, err := newNode(c, s, r)
			if err != nil {
				c.Close()
				return nil, err
			}
			c.nodes[s][r] = n
		}
	}
	c.registerObs()
	// Deterministic first election: replica 0 leads each shard. Followers
	// are already listening, so the founding journal (signing keys
	// included) streams to every mirror as it is written.
	for s := 0; s < cfg.Shards; s++ {
		if err := c.nodes[s][0].tryLead(); err != nil {
			c.Close()
			return nil, err
		}
	}
	for s := range c.nodes {
		for _, n := range c.nodes[s] {
			n.looping.Store(true)
			go n.run(cfg.Heartbeat)
		}
	}
	return c, nil
}

// --- core.ShardRouter ------------------------------------------------------

// NumShards implements core.ShardRouter.
func (c *Cluster) NumShards() int { return c.cfg.Shards }

// Leader implements core.ShardRouter: the current leader's address, false
// mid-failover.
func (c *Cluster) Leader(shard int) (bus.Address, bool) {
	if shard < 0 || shard >= c.cfg.Shards {
		return "", false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	e := c.leaders[shard]
	return e.addr, e.known
}

// BrokerPub implements core.ShardRouter. A shard's signing key is journaled
// at founding and survives every failover, so once known it never changes.
func (c *Cluster) BrokerPub(shard int) sig.PublicKey {
	if shard < 0 || shard >= c.cfg.Shards {
		return nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.leaders[shard].pub
}

// --- introspection ---------------------------------------------------------

// Shards returns the shard count; Replicas the replication factor.
func (c *Cluster) Shards() int   { return c.cfg.Shards }
func (c *Cluster) Replicas() int { return c.cfg.Replicas }

// LeaderBroker returns the live broker of a shard and which replica runs it.
func (c *Cluster) LeaderBroker(shard int) (*core.Broker, int, bool) {
	c.mu.RLock()
	e := c.leaders[shard]
	c.mu.RUnlock()
	if !e.known {
		return nil, 0, false
	}
	b := c.nodes[shard][e.replica].Broker()
	if b == nil {
		return nil, 0, false
	}
	return b, e.replica, true
}

// Node returns one replica's node (tests and diagnostics).
func (c *Cluster) Node(shard, replica int) *Node { return c.nodes[shard][replica] }

// PendingSettlements sums unacknowledged cross-shard settlements across all
// live leaders — the load harness drains this to zero before auditing.
func (c *Cluster) PendingSettlements() int {
	total := 0
	for s := 0; s < c.cfg.Shards; s++ {
		if b, _, ok := c.LeaderBroker(s); ok {
			total += b.PendingSettlements()
		}
	}
	return total
}

// WaitLeader blocks until a shard has a live leader, returning its replica.
func (c *Cluster) WaitLeader(shard int, timeout time.Duration) (int, error) {
	deadline := time.Now().Add(timeout)
	for {
		if _, r, ok := c.LeaderBroker(shard); ok {
			return r, nil
		}
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("federation: shard %d has no leader after %v", shard, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// --- fault injection -------------------------------------------------------

// KillLeader crash-stops a shard's current leader: its endpoint vanishes but
// its lease is NOT released, so the shard stays leaderless until the TTL
// expires and a follower promotes from its mirror — the full failover path,
// timed as a real crash would be. Returns the killed replica index.
func (c *Cluster) KillLeader(shard int) (int, error) {
	c.mu.Lock()
	e := c.leaders[shard]
	if !e.known {
		c.mu.Unlock()
		return 0, fmt.Errorf("federation: shard %d has no leader to kill", shard)
	}
	c.leaders[shard].known = false
	n := c.nodes[shard][e.replica]
	c.mu.Unlock()
	// Shutdown outside the cluster lock: Close paths call back into
	// clearLeader.
	n.shutdown(false)
	return e.replica, nil
}

// Close stops every node, releasing leases (clean shutdown).
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	for s := range c.nodes {
		for _, n := range c.nodes[s] {
			if n != nil {
				n.shutdown(true)
			}
		}
	}
	return nil
}

// --- leadership table ------------------------------------------------------

func (c *Cluster) arbiter(shard int) *Arbiter { return c.arbiters[shard] }

func (c *Cluster) setLeader(shard, replica int, addr bus.Address, pub sig.PublicKey) {
	c.mu.Lock()
	c.leaders[shard] = leaderEntry{known: true, replica: replica, addr: addr, pub: pub}
	c.mu.Unlock()
}

// clearLeader drops the routing entry iff addr still owns it — a deposed
// leader stepping down late must not erase its successor.
func (c *Cluster) clearLeader(shard int, addr bus.Address) {
	c.mu.Lock()
	if c.leaders[shard].known && c.leaders[shard].addr == addr {
		c.leaders[shard].known = false
	}
	c.mu.Unlock()
}

// followerAddrs lists the live replication targets of a shard's leader.
func (c *Cluster) followerAddrs(shard, selfReplica int) []bus.Address {
	out := make([]bus.Address, 0, c.cfg.Replicas-1)
	for r, n := range c.nodes[shard] {
		if r == selfReplica || n == nil || !n.alive.Load() {
			continue
		}
		out = append(out, n.addr)
	}
	return out
}

// brokerConfig builds the core.BrokerConfig a node promotes with: the
// cluster template pointed at this node's address (through nodeNet, which
// reuses the node's existing listener), journaling to this node's own dir
// with the replication hook installed, federated at this node's shard.
func (c *Cluster) brokerConfig(n *Node) core.BrokerConfig {
	cfg := c.cfg.Broker
	cfg.Network = nodeNet{n: n}
	cfg.Addr = n.addr
	// Shard brokers share one process; their label-less metrics would
	// collide in a shared registry, so broker-level obs stays off and the
	// cluster exports federation metrics itself.
	cfg.Obs = nil
	cfg.InitialCredit = 0
	wc := c.cfg.Wal
	wc.Dir = n.dir
	wc.OnAppend = n.onAppend
	wc.Obs = nil
	// Snapshots rewrite the log in place, which would tear the mirrors'
	// byte-stream contract; effectively disable them. Compaction of a
	// federated shard is an explicit operator action (CompactLog) taken
	// with replicas resynced afterwards.
	wc.SnapshotEvery = 1 << 62
	cfg.Persistence = &wc
	cfg.Federation = &core.FederationConfig{
		Index:  n.shard,
		Shards: c.cfg.Shards,
		LeaderAddr: func(shard int) (bus.Address, bool) {
			return c.Leader(shard)
		},
		ShardPub: func(shard int) (sig.PublicKey, bool) {
			pub := c.BrokerPub(shard)
			return pub, len(pub) > 0
		},
		SettleRetry: c.cfg.SettleRetry,
	}
	return cfg
}

// --- observability ---------------------------------------------------------

var failoverBounds = []float64{0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5}

func (c *Cluster) registerObs() {
	r := c.cfg.Obs
	if r == nil {
		return
	}
	r.Help("whopay_fed_repl_lag_bytes", "Largest unacknowledged replication backlog per node, in bytes.")
	r.Help("whopay_fed_failovers_total", "Leader failovers per shard (boot election excluded).")
	r.Help("whopay_fed_failover_seconds", "Promotion latency per failover: lease win to serving broker.")
	r.Help("whopay_fed_leader_replica", "Replica index currently leading each shard (-1 while leaderless).")
	c.failovers = make([]*obs.Counter, c.cfg.Shards)
	c.failoverD = make([]*obs.Histogram, c.cfg.Shards)
	for s := 0; s < c.cfg.Shards; s++ {
		shard := s
		lbl := obs.Labels{"shard": fmt.Sprintf("%d", s)}
		c.failovers[s] = r.Counter("whopay_fed_failovers_total", lbl)
		c.failoverD[s] = r.Histogram("whopay_fed_failover_seconds", lbl, failoverBounds)
		r.GaugeFunc("whopay_fed_leader_replica", lbl, func() float64 {
			c.mu.RLock()
			defer c.mu.RUnlock()
			if !c.leaders[shard].known {
				return -1
			}
			return float64(c.leaders[shard].replica)
		})
		r.RegisterHealth(fmt.Sprintf("fed-shard%d", s), func() (string, error) {
			b, rep, ok := c.LeaderBroker(shard)
			if !ok {
				return "", fmt.Errorf("shard %d: no live leader", shard)
			}
			if err := b.PersistenceErr(); err != nil {
				return "", fmt.Errorf("shard %d: %w", shard, err)
			}
			return fmt.Sprintf("leader replica %d", rep), nil
		})
		for rep, n := range c.nodes[s] {
			node := n
			r.GaugeFunc("whopay_fed_repl_lag_bytes",
				obs.Labels{"shard": fmt.Sprintf("%d", s), "replica": fmt.Sprintf("%d", rep)},
				func() float64 { return float64(node.LagBytes()) })
		}
	}
}

// noteFailover records one completed promotion.
func (c *Cluster) noteFailover(shard int, d time.Duration) {
	if c.failovers == nil {
		return
	}
	c.failovers[shard].Inc()
	c.failoverD[shard].Observe(d)
}
