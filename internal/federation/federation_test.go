package federation

import (
	"bytes"
	"errors"
	"fmt"
	mrand "math/rand"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/coin"
	"whopay/internal/core"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// world is the federation test harness: a cluster plus the surrounding
// protocol scaffolding (directory, judge, peers routed by shard).
type world struct {
	t       *testing.T
	net     *bus.Memory
	scheme  sig.Scheme
	dir     *core.Directory
	judge   *core.Judge
	cluster *Cluster
	seq     int
}

func newWorld(t *testing.T, shards, replicas int, ttl time.Duration) *world {
	t.Helper()
	scheme := sig.NewNull(1000)
	judge, err := core.NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	w := &world{
		t:      t,
		net:    bus.NewMemory(),
		scheme: scheme,
		dir:    core.NewDirectory(),
		judge:  judge,
	}
	cl, err := Start(Config{
		Shards:   shards,
		Replicas: replicas,
		Network:  w.net,
		Broker: core.BrokerConfig{
			Scheme:    scheme,
			Directory: w.dir,
			GroupPub:  judge.GroupPublicKey(),
		},
		Wal:         wal.Config{Dir: t.TempDir(), Policy: wal.FsyncNever},
		LeaseTTL:    ttl,
		SettleRetry: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.cluster = cl
	t.Cleanup(func() { cl.Close() })
	return w
}

func (w *world) addPeer(id string) *core.Peer {
	w.t.Helper()
	w.seq++
	addr, _ := w.cluster.Leader(0)
	prober, _ := bus.Network(w.net).(core.Prober)
	presence, _ := bus.Network(w.net).(core.Presence)
	p, err := core.NewPeer(core.PeerConfig{
		ID:         id,
		Network:    w.net,
		Addr:       bus.Address(fmt.Sprintf("addr:%d", w.seq)),
		Scheme:     w.scheme,
		Directory:  w.dir,
		BrokerAddr: addr,
		BrokerPub:  w.cluster.BrokerPub(0),
		Router:     w.cluster,
		Judge:      w.judge,
		Prober:     prober,
		Presence:   presence,
		Rand:       mrand.New(mrand.NewSource(int64(w.seq) * 104729)),
		Retry: &bus.RetryPolicy{
			MaxAttempts: 8,
			BaseDelay:   10 * time.Millisecond,
			MaxDelay:    80 * time.Millisecond,
			Factor:      2,
		},
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { p.Close() })
	return p
}

// peerAddr resolves a peer's bus address through the directory.
func (w *world) peerAddr(id string) bus.Address {
	w.t.Helper()
	e, ok := w.dir.Lookup(id)
	if !ok {
		w.t.Fatalf("identity %q not in directory", id)
	}
	return e.Addr
}

// buyAndPay purchases n coins at the payer and hands them to the payee via
// online transfer, returning the payee's held coin IDs.
func buyAndPay(w *world, payer, payee *core.Peer, payeeID string, n int) []coin.ID {
	w.t.Helper()
	for i := 0; i < n; i++ {
		if _, err := payer.Purchase(1, false); err != nil {
			w.t.Fatalf("purchase %d: %v", i, err)
		}
		if _, err := payer.Pay(w.peerAddr(payeeID), 1, core.PolicyI); err != nil {
			w.t.Fatalf("pay %d: %v", i, err)
		}
	}
	return payee.HeldCoins()
}

// drainSettlements waits for every cross-shard settlement to be acked.
func (w *world) drainSettlements(timeout time.Duration) {
	w.t.Helper()
	deadline := time.Now().Add(timeout)
	for w.cluster.PendingSettlements() > 0 {
		if time.Now().After(deadline) {
			w.t.Fatalf("settlements still pending after %v", timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// balances returns payoutRef's balance per shard.
func (w *world) balances(ref string) []int64 {
	w.t.Helper()
	out := make([]int64, w.cluster.Shards())
	for s := range out {
		b, _, ok := w.cluster.LeaderBroker(s)
		if !ok {
			w.t.Fatalf("shard %d has no leader", s)
		}
		out[s] = b.Balance(ref)
	}
	return out
}

// TestShardedPurchaseDepositSettles: coins route to their home shard by ID,
// deposits from foreign shards settle over the two-phase path, and the
// payout credit ends up on exactly the reference's home shard.
func TestShardedPurchaseDepositSettles(t *testing.T) {
	w := newWorld(t, 2, 1, time.Second)
	u := w.addPeer("u")
	v := w.addPeer("v")

	const n = 12
	ids := buyAndPay(w, u, v, "v", n)
	if len(ids) != n {
		t.Fatalf("payee holds %d coins, want %d", len(ids), n)
	}
	// The coin IDs must actually spread over both shards, or this test
	// exercises nothing cross-shard.
	spread := make([]int, 2)
	for _, id := range ids {
		spread[core.ShardOfKey(string(id), 2)]++
	}
	if spread[0] == 0 || spread[1] == 0 {
		t.Fatalf("coin IDs did not spread across shards: %v", spread)
	}

	const ref = "shop"
	for _, id := range ids {
		if err := v.Deposit(id, ref); err != nil {
			t.Fatalf("deposit: %v", err)
		}
	}
	w.drainSettlements(3 * time.Second)

	home := core.ShardOfKey(ref, 2)
	bals := w.balances(ref)
	if bals[home] != n {
		t.Errorf("home shard %d balance = %d, want %d (all shards: %v)", home, bals[home], n, bals)
	}
	if bals[1-home] != 0 {
		t.Errorf("foreign shard %d holds %d, want 0", 1-home, bals[1-home])
	}
}

// TestFailoverPreservesCommittedState: kill a shard leader mid-life; a
// follower must promote from its mirrored log with the same broker signing
// key and every committed coin and credit intact, and clients must reach it
// through retry + redirect without reconfiguration.
func TestFailoverPreservesCommittedState(t *testing.T) {
	w := newWorld(t, 2, 2, 120*time.Millisecond)
	u := w.addPeer("u")
	v := w.addPeer("v")

	const ref = "shop"
	ids := buyAndPay(w, u, v, "v", 6)
	if len(ids) != 6 {
		t.Fatalf("payee holds %d coins, want 6", len(ids))
	}
	// Commit half before the crash.
	for _, id := range ids[:3] {
		if err := v.Deposit(id, ref); err != nil {
			t.Fatalf("pre-kill deposit: %v", err)
		}
	}
	w.drainSettlements(3 * time.Second)

	pubBefore := w.cluster.BrokerPub(0)
	killed, err := w.cluster.KillLeader(0)
	if err != nil {
		t.Fatal(err)
	}

	// Deposits issued into the leaderless window must ride retries and
	// redirects to the promoted follower.
	for _, id := range ids[3:] {
		if err := v.Deposit(id, ref); err != nil {
			t.Fatalf("post-kill deposit: %v", err)
		}
	}

	rep, err := w.cluster.WaitLeader(0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if rep == killed {
		t.Fatalf("killed replica %d still leads", killed)
	}
	if !bytes.Equal(w.cluster.BrokerPub(0), pubBefore) {
		t.Error("broker signing key changed across failover")
	}
	w.drainSettlements(3 * time.Second)

	home := core.ShardOfKey(ref, 2)
	if got := w.balances(ref)[home]; got != int64(len(ids)) {
		t.Errorf("balance after failover = %d, want %d: committed state lost", got, len(ids))
	}

	// And fresh work must flow normally on the recovered shard.
	fresh := buyAndPay(w, u, v, "v", 2)
	if len(fresh) != 2 {
		t.Fatalf("payee holds %d fresh coins, want 2", len(fresh))
	}
	for _, id := range fresh {
		if err := v.Deposit(id, ref); err != nil {
			t.Fatalf("post-failover deposit: %v", err)
		}
	}
}

// TestFollowerRejectsWithRedirect: a follower refuses protocol traffic with
// ErrNotLeader and points the caller at the live leader.
func TestFollowerRejectsWithRedirect(t *testing.T) {
	w := newWorld(t, 1, 2, time.Second)
	probe, err := w.net.Listen("probe", func(bus.Address, any) (any, error) {
		return nil, errors.New("probe serves nothing")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()

	_, lead, ok := w.cluster.LeaderBroker(0)
	if !ok {
		t.Fatal("no leader")
	}
	follower := w.cluster.Node(0, 1-lead)
	_, err = probe.Call(follower.Addr(), core.SyncRequest{})
	if !errors.Is(err, core.ErrNotLeader) {
		t.Fatalf("follower answered with %v, want ErrNotLeader", err)
	}
	hint, ok := bus.RedirectHint(err)
	if !ok {
		t.Fatal("ErrNotLeader carried no redirect hint")
	}
	if want := w.cluster.Node(0, lead).Addr(); hint != want {
		t.Errorf("redirect hint %q, want leader %q", hint, want)
	}
}

// TestMirrorDivergenceTriggersResync: a frame landing beyond the mirror's
// end must be refused with a resync request, and frames from a deposed
// epoch must be rejected outright.
func TestMirrorDivergenceTriggersResync(t *testing.T) {
	w := newWorld(t, 1, 2, time.Second)
	probe, err := w.net.Listen("probe", func(bus.Address, any) (any, error) {
		return nil, errors.New("probe serves nothing")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer probe.Close()

	_, lead, ok := w.cluster.LeaderBroker(0)
	if !ok {
		t.Fatal("no leader")
	}
	follower := w.cluster.Node(0, 1-lead)

	// Stale epoch: the founding election is epoch 1, so epoch 0 is a
	// deposed leader's stream.
	if _, err := probe.Call(follower.Addr(), FrameMsg{Epoch: 0, Seg: 1, Off: 0, Frame: []byte("x")}); err == nil {
		t.Error("follower accepted a frame from a deposed epoch")
	}

	// A gap: offset far beyond the mirrored size must not be appended.
	resp, err := probe.Call(follower.Addr(), FrameMsg{Epoch: 99, Seg: 1, Off: 1 << 40, Frame: []byte("x")})
	if err != nil {
		t.Fatalf("gap frame: %v", err)
	}
	if ack, ok := resp.(FrameAck); !ok || !ack.Resync {
		t.Errorf("gap frame answered %#v, want FrameAck{Resync: true}", resp)
	}
}

// TestCleanCloseReleasesLeases: Close must be idempotent and leave no
// goroutines holding leases.
func TestCleanCloseReleasesLeases(t *testing.T) {
	w := newWorld(t, 2, 2, time.Second)
	if err := w.cluster.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.cluster.Close(); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 2; s++ {
		if who, _, held := w.cluster.arbiter(s).Holder(); held {
			t.Errorf("shard %d lease still held by %s after Close", s, who)
		}
	}
}
