// Package federation replicates each broker shard of a federated trust root
// (DESIGN.md §13): the shard leader streams its write-ahead log to follower
// replicas frame-by-frame, a lease arbiter fences exactly one leader per
// shard, and on leader death a caught-up follower promotes itself by
// recovering a full broker from its mirrored log — same journaled signing
// key, same coins, zero committed state lost.
package federation

import (
	"whopay/internal/bus/tcpbus"
	"whopay/internal/wire"
)

// Wire type tags for replication messages. Part of the wire contract: stable
// across versions, never reused. Core protocol uses 1–36, the DHT 40–47;
// federation owns 70+.
const (
	tagFrameMsg = 70
	tagFrameAck = 71
	tagStateMsg = 72
	tagStateAck = 73
)

// FrameMsg carries one committed WAL frame from a shard leader to a
// follower: the segment it belongs to, the byte offset of the frame within
// that segment, and the raw frame bytes exactly as written locally. Epoch is
// the leader's lease epoch — followers reject frames from deposed leaders.
type FrameMsg struct {
	Shard int
	Epoch uint64
	Seg   uint64
	Off   int64
	Frame []byte
}

// FrameAck acknowledges a frame. Resync set means the follower's mirror has
// diverged (fresh replica, missed frames, torn tail) and it needs the full
// file set.
type FrameAck struct {
	Resync bool
}

// StateMsg ships a leader's complete live log — every segment and snapshot
// file, whole — to a follower whose mirror diverged.
type StateMsg struct {
	Shard int
	Epoch uint64
	Files []StateFile
}

// StateFile is one log file in a StateMsg.
type StateFile struct {
	Name string
	Data []byte
}

// StateAck acknowledges a full-state resync.
type StateAck struct{}

// RegisterWireTypes registers the replication messages with the TCP
// transport: binary codecs for framed connections plus the gob fallback.
// Call once before running federation nodes over tcpbus; the in-memory bus
// does not need it.
func RegisterWireTypes() {
	registerWireCodecs()
	for _, v := range []any{FrameMsg{}, FrameAck{}, StateMsg{}, StateAck{}} {
		tcpbus.RegisterType(v)
	}
}

func registerWireCodecs() {
	wire.Register(tagFrameMsg, "federation.FrameMsg", FrameMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(FrameMsg)
			dst = wire.AppendInt(dst, int64(m.Shard))
			dst = wire.AppendUvarint(dst, m.Epoch)
			dst = wire.AppendUvarint(dst, m.Seg)
			dst = wire.AppendInt(dst, m.Off)
			dst = wire.AppendBytes(dst, m.Frame)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m FrameMsg
			shard, err := d.Int()
			if err != nil {
				return nil, err
			}
			m.Shard = int(shard)
			if m.Epoch, err = d.Uvarint(); err != nil {
				return nil, err
			}
			if m.Seg, err = d.Uvarint(); err != nil {
				return nil, err
			}
			if m.Off, err = d.Int(); err != nil {
				return nil, err
			}
			if m.Frame, err = d.Bytes(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagFrameAck, "federation.FrameAck", FrameAck{},
		func(dst []byte, v any) ([]byte, error) {
			return wire.AppendBool(dst, v.(FrameAck).Resync), nil
		},
		func(d *wire.Decoder) (any, error) {
			resync, err := d.Bool()
			if err != nil {
				return nil, err
			}
			return FrameAck{Resync: resync}, nil
		})
	wire.Register(tagStateMsg, "federation.StateMsg", StateMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(StateMsg)
			dst = wire.AppendInt(dst, int64(m.Shard))
			dst = wire.AppendUvarint(dst, m.Epoch)
			dst = wire.AppendUvarint(dst, uint64(len(m.Files)))
			for i := range m.Files {
				dst = wire.AppendString(dst, m.Files[i].Name)
				dst = wire.AppendBytes(dst, m.Files[i].Data)
			}
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m StateMsg
			shard, err := d.Int()
			if err != nil {
				return nil, err
			}
			m.Shard = int(shard)
			if m.Epoch, err = d.Uvarint(); err != nil {
				return nil, err
			}
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			if n > uint64(d.Len()) {
				return nil, wire.ErrMalformed
			}
			for i := uint64(0); i < n; i++ {
				var f StateFile
				if f.Name, err = d.String(); err != nil {
					return nil, err
				}
				if f.Data, err = d.Bytes(); err != nil {
					return nil, err
				}
				m.Files = append(m.Files, f)
			}
			return m, nil
		})
	wire.Register(tagStateAck, "federation.StateAck", StateAck{},
		func(dst []byte, v any) ([]byte, error) { return dst, nil },
		func(d *wire.Decoder) (any, error) { return StateAck{}, nil })
}
