// Package dht implements the trusted, access-controlled distributed hash
// table WhoPay's real-time double-spending detection relies on (paper
// Section 5.1).
//
// Coin bindings are published under the coin's public key: the DHT key is
// SHA-256(pkC), and a write is accepted only when it is signed by the coin
// key itself (SHA-256 of the signing key must equal the record key) or by a
// configured trusted writer (the broker, so downtime operations keep the
// public list current). Anyone can read. Nodes support a register/notify
// mechanism (in the spirit of Scribe/Bayeux): watchers subscribe to a key
// and receive a notification on every accepted write, which is how holders
// spot an unexpected re-binding of a coin they hold — a double spend — in
// real time.
//
// Routing is Chord-style: node IDs are SHA-256 of their addresses on a
// 256-bit ring; each node knows its successor list and a finger table.
// Clients may route iteratively (O(log n) hops, exercising the fingers) or
// one-hop (the client knows the membership, as in Dynamo-style systems —
// appropriate here because the paper's DHT is a managed, trusted
// infrastructure, and cheap enough for the load simulator).
package dht

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"whopay/internal/bus"
	"whopay/internal/dht/replica"
	"whopay/internal/obs"
	"whopay/internal/sig"
	"whopay/internal/store"
	"whopay/internal/wal"
)

// Errors returned by nodes and clients.
var (
	// ErrAccessDenied is returned for writes that fail the ACL.
	ErrAccessDenied = errors.New("dht: write access denied")
	// ErrStaleVersion is returned for writes not newer than the stored
	// record.
	ErrStaleVersion = errors.New("dht: stale version")
	// ErrNoNodes is returned by a client with an empty membership.
	ErrNoNodes = errors.New("dht: no nodes")
	// ErrLookupFailed is returned when routing cannot reach a
	// responsible node.
	ErrLookupFailed = errors.New("dht: lookup failed")
)

// Key is a position on the 256-bit ring.
type Key [32]byte

// KeyFor maps a public key (e.g. a coin key) to its ring position.
func KeyFor(pub sig.PublicKey) Key { return sha256.Sum256(pub) }

// keyForAddr maps a node address to its ring position.
func keyForAddr(addr bus.Address) Key { return sha256.Sum256([]byte("dht/node/" + addr)) }

// Less orders keys on the ring's underlying integer line.
func (k Key) Less(other Key) bool { return bytes.Compare(k[:], other[:]) < 0 }

// between reports whether x lies in the half-open ring interval (a, b].
func between(a, b, x Key) bool {
	switch bytes.Compare(a[:], b[:]) {
	case -1: // a < b: ordinary interval
		return bytes.Compare(a[:], x[:]) < 0 && bytes.Compare(x[:], b[:]) <= 0
	case 1: // wraps around zero
		return bytes.Compare(a[:], x[:]) < 0 || bytes.Compare(x[:], b[:]) <= 0
	default: // a == b: full circle
		return true
	}
}

// Record is a versioned, signed DHT entry. For coin bindings, Value is the
// binding's canonical message concatenated with its signature, Version is
// the binding sequence number, and AuthPub is the coin public key (or the
// broker's for downtime writes).
type Record struct {
	Key     Key
	Version uint64
	Value   []byte
	AuthPub sig.PublicKey
	Sig     []byte
	// Epoch is node-local restart metadata, stamped by the accepting node
	// (never by the writer, and not covered by Sig): the node epoch at
	// which this record was accepted. Persistent nodes use it to fence
	// stale pre-crash writes after a recovery (see persist.go).
	Epoch uint64
}

// RecordMessage is the canonical byte string signed for a record.
func RecordMessage(key Key, version uint64, value []byte) []byte {
	out := make([]byte, 0, 52+len(value))
	out = append(out, "whopay/dht/record/1"...)
	out = append(out, key[:]...)
	out = binary.BigEndian.AppendUint64(out, version)
	out = append(out, value...)
	return out
}

// SignRecord builds a signed record writing value at key with the given
// version, authenticated by kp.
func SignRecord(suite sig.Suite, kp sig.KeyPair, key Key, version uint64, value []byte) (Record, error) {
	sigBytes, err := suite.Sign(kp.Private, RecordMessage(key, version, value))
	if err != nil {
		return Record{}, fmt.Errorf("dht: signing record: %w", err)
	}
	return Record{Key: key, Version: version, Value: value, AuthPub: kp.Public.Clone(), Sig: sigBytes}, nil
}

// Wire messages. Exported so the TCP transport can gob-register them.
type (
	// PutMsg writes a record. NoReplicate marks replica fan-out writes.
	PutMsg struct {
		Rec         Record
		NoReplicate bool
	}
	// GetMsg reads the record at Key.
	GetMsg struct{ Key Key }
	// GetResp answers GetMsg.
	GetResp struct {
		Rec   Record
		Found bool
	}
	// FindMsg asks a node for one Chord routing step toward Key.
	FindMsg struct{ Key Key }
	// FindResp answers FindMsg: the responsible node if Found, else the
	// next hop.
	FindResp struct {
		Found bool
		Addr  bus.Address
	}
	// SubMsg subscribes (or unsubscribes) Watcher to writes at Key.
	// NoReplicate marks replica fan-out of a registration: watcher sets
	// are replicated across the replica set like records, so a
	// registration accepted by a fallback replica still notifies after
	// the primary recovers.
	SubMsg struct {
		Key         Key
		Watcher     bus.Address
		Unsub       bool
		NoReplicate bool
	}
	// Notify is delivered to watchers on every accepted write.
	Notify struct{ Rec Record }
	// Ack is an empty success response.
	Ack struct{}
)

type nodeRef struct {
	id   Key
	addr bus.Address
}

// dhtShards is the lock-domain count for a node's record and subscription
// stores: every coin in the system publishes here, so writes against
// different coins must not serialize on one node-wide lock.
const dhtShards = 32

// keyHash routes ring keys into store shards. Keys are SHA-256 outputs, so
// any 8 bytes are uniformly distributed.
func keyHash(k Key) uint64 { return binary.BigEndian.Uint64(k[:8]) }

// Node is one DHT server. Create nodes through Cluster. Records and
// subscriptions live in sharded stores; the version check in handlePut is
// atomic per key (under the key's shard lock).
type Node struct {
	id      Key
	addr    bus.Address
	ep      bus.Endpoint
	scheme  sig.Scheme
	trusted map[string]bool

	// started closes once the cluster has wired this node's routing
	// tables. The endpoint is live from Listen on, and on a restart the
	// address is already known to peers and sweepers — requests arriving
	// in the wiring window park here instead of observing a half-built
	// node.
	started chan struct{}

	store *store.Sharded[Key, Record]
	subs  *store.Sharded[Key, map[bus.Address]bool]

	// Static routing state, wired by the cluster: the full sorted ring
	// (successor/replica computation) and a log-sized finger table used
	// to answer iterative lookups.
	ring     []nodeRef
	fingers  []nodeRef
	replicas int

	// Durability (nil/zero for in-memory nodes): the journal, the node
	// epoch (immutable once serving), and the first journal failure.
	walLog *wal.Log
	epoch  uint64
	walMu  sync.Mutex
	walErr error

	// Observability (nil/zero when the cluster has no Obs registry).
	instr         *obs.Instr
	lastForceSync atomic.Int64 // unix nanos of the epoch-fence force-sync at recovery

	// Replication (DESIGN.md §14). rep is nil on legacy single-copy nodes,
	// which keeps every behavior and error shape exactly as before.
	rep       *replica.Config
	stopSweep chan struct{}
	sweepWG   sync.WaitGroup

	// Replication counters, exported as function metrics by the cluster.
	sweepRounds   atomic.Int64
	sweepRepairs  atomic.Int64
	repairBacklog atomic.Int64
	backlogGrowth atomic.Int64
	quorumWrites  atomic.Int64
	quorumFails   atomic.Int64
}

// Addr returns the node's bus address.
func (n *Node) Addr() bus.Address { return n.addr }

// handle dispatches one DHT message, then cuts a compaction snapshot when
// the journal is due (outside all store locks).
func (n *Node) handle(from bus.Address, msg any) (any, error) {
	<-n.started
	resp, err := n.dispatch(from, msg)
	n.maybeSnapshot()
	return resp, err
}

func (n *Node) dispatch(_ bus.Address, msg any) (any, error) {
	// Spans are opened inline per case (no closure — a wrapper func would
	// allocate even with instrumentation disabled).
	switch m := msg.(type) {
	case PutMsg:
		sp := n.instr.Begin("serve-put")
		resp, err := n.handlePut(m)
		n.instr.End(sp, err)
		return resp, err
	case QuorumPutMsg:
		sp := n.instr.Begin("serve-quorum-put")
		resp, err := n.handleQuorumPut(m)
		n.instr.End(sp, err)
		return resp, err
	case GetMsg:
		sp := n.instr.Begin("serve-get")
		rec, ok := n.store.Get(m.Key)
		n.instr.End(sp, nil)
		return GetResp{Rec: rec, Found: ok}, nil
	case LeaseGetMsg:
		sp := n.instr.Begin("serve-lease-get")
		rec, ok := n.store.Get(m.Key)
		n.instr.End(sp, nil)
		return LeaseResp{Rec: rec, Found: ok, GrantMs: n.leaseGrantMs()}, nil
	case DigestMsg:
		rec, ok := n.store.Get(m.Key)
		return DigestResp{Found: ok, Version: rec.Version}, nil
	case SweepMsg:
		return n.handleSweep(m)
	case SweepKeysMsg:
		sp := n.instr.Begin("serve-sweep-keys")
		resp, err := n.handleSweepKeys(m)
		n.instr.End(sp, err)
		return resp, err
	case FindMsg:
		return n.findStep(m.Key), nil
	case SubMsg:
		// The watcher set is mutated in place under the shard's write
		// lock; readers copy it under View (see handlePut).
		n.subs.Compute(m.Key, func(ws map[bus.Address]bool, exists bool) (map[bus.Address]bool, store.Op) {
			if m.Unsub {
				if !exists {
					return nil, store.OpKeep
				}
				delete(ws, m.Watcher)
				n.journalSubsLocked(m.Key, ws)
				if len(ws) == 0 {
					return nil, store.OpDelete
				}
				return ws, store.OpSet
			}
			if ws == nil {
				ws = make(map[bus.Address]bool)
			}
			ws[m.Watcher] = true
			n.journalSubsLocked(m.Key, ws)
			return ws, store.OpSet
		})
		// Replicate the registration across the replica set, best-effort,
		// so a watcher registered at a fallback replica is still notified
		// by the primary once it recovers. Anti-entropy closes the gap
		// for replicas that were down right now.
		if !m.NoReplicate {
			if others := n.otherReplicas(m.Key); len(others) > 0 {
				fwd := m
				fwd.NoReplicate = true
				n.fanOut(others, fwd)
			}
		}
		return Ack{}, nil
	default:
		return nil, fmt.Errorf("dht: unknown message %T", msg)
	}
}

func (n *Node) handlePut(m PutMsg) (any, error) {
	accepted, rec, err := n.acceptRecord(m.Rec)
	if err != nil {
		return nil, err
	}
	if !accepted {
		return Ack{}, nil // idempotent re-put
	}
	if !m.NoReplicate {
		// Best-effort: a momentarily unreachable replica will be
		// repaired by the next write (or by anti-entropy).
		n.fanOut(n.otherReplicas(rec.Key), PutMsg{Rec: rec, NoReplicate: true})
		n.notifyWatchers(rec)
	}
	return Ack{}, nil
}

// acceptRecord validates and applies one record locally: ACL, signature,
// then the version check and the write as one atomic step under the key's
// shard lock, so concurrent writers cannot interleave a stale record over
// a newer one. Returns the record as stored (stamped with this node's
// epoch) when accepted.
func (n *Node) acceptRecord(rec Record) (bool, Record, error) {
	// ACL: the signing key must hash to the record key (coin-owner
	// write) or be a trusted writer (broker downtime write).
	if KeyFor(rec.AuthPub) != rec.Key && !n.trusted[string(rec.AuthPub)] {
		return false, rec, ErrAccessDenied
	}
	if err := n.scheme.Verify(rec.AuthPub, RecordMessage(rec.Key, rec.Version, rec.Value), rec.Sig); err != nil {
		return false, rec, fmt.Errorf("%w: bad record signature: %v", ErrAccessDenied, err)
	}
	var staleErr error
	accepted := false
	n.store.Compute(rec.Key, func(old Record, exists bool) (Record, store.Op) {
		if exists && rec.Version <= old.Version {
			switch {
			case rec.Version == old.Version && bytes.Equal(rec.Value, old.Value):
				return old, store.OpKeep // idempotent re-put
			case rec.Version == old.Version && old.Epoch < n.epoch && n.trusted[string(rec.AuthPub)]:
				// The stored record predates this node's latest
				// recovery: a trusted writer (the broker) may
				// refresh the authoritative binding at the same
				// version. Once refreshed it carries the current
				// epoch, closing the door on pre-crash races.
			default:
				staleErr = fmt.Errorf("%w: have v%d, got v%d", ErrStaleVersion, old.Version, rec.Version)
				return old, store.OpKeep
			}
		}
		rec.Epoch = n.epoch
		accepted = true
		n.journalRecordLocked(rec)
		return rec, store.OpSet
	})
	return accepted, rec, staleErr
}

// notifyWatchers tells every watcher of rec.Key about an accepted write,
// concurrently and best-effort — an offline watcher simply misses it.
func (n *Node) notifyWatchers(rec Record) {
	var watchers []bus.Address
	n.subs.View(rec.Key, func(ws map[bus.Address]bool, _ bool) {
		for w := range ws {
			watchers = append(watchers, w)
		}
	})
	n.fanOut(watchers, Notify{Rec: rec})
}

// fanWidth bounds concurrent downstream calls on the serve path.
const fanWidth = 8

// fanOut delivers msg to every address over at most fanWidth concurrent
// goroutines, waits for completion, and reports how many calls succeeded —
// so serve-put latency is the slowest downstream call, not the sum of all
// of them. Failures are the caller's policy: quorum writes count them,
// replica pushes and watcher notifies shrug.
func (n *Node) fanOut(addrs []bus.Address, msg any) int {
	switch len(addrs) {
	case 0:
		return 0
	case 1: // common case: no goroutine
		if _, err := n.ep.Call(addrs[0], msg); err != nil {
			return 0
		}
		return 1
	}
	var (
		ok  atomic.Int64
		wg  sync.WaitGroup
		sem = make(chan struct{}, fanWidth)
	)
	for _, a := range addrs {
		wg.Add(1)
		sem <- struct{}{}
		go func(a bus.Address) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := n.ep.Call(a, msg); err == nil {
				ok.Add(1)
			}
		}(a)
	}
	wg.Wait()
	return int(ok.Load())
}

// findStep performs one Chord routing step.
func (n *Node) findStep(key Key) FindResp {
	succ := n.successorOf(n.id)
	if between(n.id, succ.id, key) {
		return FindResp{Found: true, Addr: succ.addr}
	}
	// Closest preceding finger.
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := n.fingers[i]
		if f.addr != n.addr && between(n.id, key, f.id) && f.id != key {
			return FindResp{Found: false, Addr: f.addr}
		}
	}
	return FindResp{Found: true, Addr: succ.addr}
}

// successorOf returns the first ring node strictly after id (wrapping).
func (n *Node) successorOf(id Key) nodeRef {
	i := sort.Search(len(n.ring), func(i int) bool { return id.Less(n.ring[i].id) })
	if i == len(n.ring) {
		i = 0
	}
	return n.ring[i]
}

// replicaSet returns the nodes responsible for key: its successor and the
// following replicas-1 nodes.
func (n *Node) replicaSet(key Key) []nodeRef {
	out := make([]nodeRef, 0, n.replicas)
	i := sort.Search(len(n.ring), func(i int) bool { return !n.ring[i].id.Less(key) })
	for r := 0; r < n.replicas && r < len(n.ring); r++ {
		out = append(out, n.ring[(i+r)%len(n.ring)])
	}
	return out
}

// StoreSize reports how many records this node holds (tests/metrics).
func (n *Node) StoreSize() int { return n.store.Len() }

// Cluster is a managed set of DHT nodes — the paper's "trusted DHT
// infrastructure ... provided as a service by a trusted entity".
type Cluster struct {
	cfg   ClusterConfig
	ring  []nodeRef
	nodes []*Node
	addrs []bus.Address

	// health holds each slot's live node for /healthz checks: Restart
	// swaps the pointer so the (once-registered) check always reports on
	// the replacement, never the crashed instance.
	health []atomic.Pointer[Node]
}

// ClusterConfig configures a DHT cluster.
type ClusterConfig struct {
	Network  bus.Network
	Scheme   sig.Scheme
	Nodes    int
	Replicas int
	// Trusted writers may publish under any key (the broker, so downtime
	// operations keep the public list current).
	Trusted []sig.PublicKey
	// AddrFor, when set, chooses node i's listen address — required for
	// transports whose address space the cluster cannot invent names in
	// (tcpbus wants "host:0" and assigns the real port at bind time). The
	// node's ring identity is derived from the address the endpoint
	// actually bound, so ephemeral ports work. Nil keeps the in-memory
	// default "dht:<i>".
	AddrFor func(i int) bus.Address
	// Persistence, when set, makes every node durable: node i journals
	// under Persistence.Sub("node-i"), and Restart recovers it from that
	// journal. Nil keeps nodes purely in memory.
	Persistence *wal.Config
	// Obs, when non-nil, instruments every node (DESIGN.md §11): spans and
	// latency histograms per served message, WAL metrics, and a /healthz
	// check reporting each node's journal error and epoch-fence age. Nil
	// (the default) keeps nodes byte-identical to uninstrumented ones.
	Obs *obs.Registry
	// Replication, when non-nil, turns on the quorum/anti-entropy
	// subsystem (DESIGN.md §14): quorum writes commit on W of N replicas,
	// every node runs a background digest sweep against its successor
	// neighbors, and lease reads carry a grant. Overrides Replicas with
	// its (defaulted) N. Nil keeps the legacy single-copy behavior and
	// error shapes exact.
	Replication *replica.Config
}

// NewCluster creates n nodes on net with the given replication factor and
// trusted writers, and wires their static routing tables.
func NewCluster(net bus.Network, scheme sig.Scheme, n, replicas int, trusted ...sig.PublicKey) (*Cluster, error) {
	return NewClusterWithConfig(ClusterConfig{
		Network: net, Scheme: scheme, Nodes: n, Replicas: replicas, Trusted: trusted,
	})
}

// NewClusterWithConfig creates a cluster, optionally persistent.
func NewClusterWithConfig(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Nodes < 1 {
		return nil, errors.New("dht: need at least one node")
	}
	if cfg.Replicas < 1 {
		cfg.Replicas = 1
	}
	if cfg.Replicas > cfg.Nodes {
		cfg.Replicas = cfg.Nodes
	}
	if cfg.Replication != nil {
		norm := cfg.Replication.WithDefaults(cfg.Nodes)
		cfg.Replication = &norm
		cfg.Replicas = norm.N
	}
	c := &Cluster{cfg: cfg}
	ring := make([]nodeRef, 0, cfg.Nodes)
	for i := 0; i < cfg.Nodes; i++ {
		node, err := c.startNode(i, "")
		if err != nil {
			c.Close()
			return nil, err
		}
		c.nodes = append(c.nodes, node)
		ring = append(ring, nodeRef{id: node.id, addr: node.addr})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].id.Less(ring[j].id) })
	c.ring = ring
	for _, node := range c.nodes {
		node.ring = ring
		node.fingers = fingersFor(node.id, ring)
		close(node.started)
	}
	for _, node := range c.nodes {
		c.addrs = append(c.addrs, node.addr)
	}
	// Sweepers start only after every node's routing is wired: a sweep
	// computes replica sets from the ring.
	for _, node := range c.nodes {
		node.startSweeper()
	}
	return c, nil
}

// startNode creates and starts node i: open its journal (when persistent),
// replay it, listen. Routing tables are wired by the caller. A non-empty
// override pins the listen address (Restart reuses the crashed node's bound
// address — peers hold it); otherwise AddrFor or the in-memory default
// names the node.
func (c *Cluster) startNode(i int, override bus.Address) (*Node, error) {
	trustSet := make(map[string]bool, len(c.cfg.Trusted))
	for _, pub := range c.cfg.Trusted {
		trustSet[string(pub)] = true
	}
	addr := override
	if addr == "" {
		if c.cfg.AddrFor != nil {
			addr = c.cfg.AddrFor(i)
		} else {
			addr = bus.Address(fmt.Sprintf("dht:%d", i))
		}
	}
	// Metric/health names must be stable and unique per slot; a bind-time
	// address ("host:0") is neither, so AddrFor clusters label by index.
	entity := string(addr)
	if c.cfg.AddrFor != nil {
		entity = fmt.Sprintf("dht-%d", i)
	}
	node := &Node{
		id:       keyForAddr(addr),
		addr:     addr,
		started:  make(chan struct{}),
		scheme:   c.cfg.Scheme,
		trusted:  trustSet,
		store:    store.NewSharded[Key, Record](dhtShards, keyHash),
		subs:     store.NewSharded[Key, map[bus.Address]bool](dhtShards, keyHash),
		replicas: c.cfg.Replicas,
		rep:      c.cfg.Replication,
	}
	node.instr = obs.NewInstr(c.cfg.Obs, entity)
	if sub := c.cfg.Persistence.Sub(fmt.Sprintf("node-%d", i)); sub != nil {
		if c.cfg.Obs != nil {
			sub.Obs = c.cfg.Obs
		}
		log, err := wal.Open(*sub)
		if err != nil {
			return nil, fmt.Errorf("dht: node %d wal: %w", i, err)
		}
		node.walLog = log
		if err := node.recoverState(); err != nil {
			_ = log.Close()
			return nil, fmt.Errorf("dht: node %d recovery: %w", i, err)
		}
	}
	// Health checks and function metrics read through the slot pointer so
	// a restarted node's replacement is what they report on; both are
	// registered once per slot.
	if c.cfg.Obs != nil && (node.walLog != nil || node.rep != nil) {
		if c.health == nil {
			c.health = make([]atomic.Pointer[Node], c.cfg.Nodes)
		}
		first := c.health[i].Load() == nil
		c.health[i].Store(node)
		if first {
			slot := &c.health[i]
			if node.walLog != nil {
				c.cfg.Obs.RegisterHealth(entity+"-journal", func() (string, error) {
					return slot.Load().healthCheck()
				})
			}
			if node.rep != nil {
				c.cfg.Obs.RegisterHealth(entity+"-replication", func() (string, error) {
					return slot.Load().replicationHealth()
				})
				c.registerReplicaMetrics(entity, slot)
			}
		}
	}
	ep, err := c.cfg.Network.Listen(addr, node.handle)
	if err != nil {
		if node.walLog != nil {
			_ = node.walLog.Close()
		}
		return nil, fmt.Errorf("dht: starting node %d: %w", i, err)
	}
	node.ep = ep
	// Adopt the address the transport actually bound ("host:0" requests
	// an ephemeral port) and re-derive the ring identity from it. Safe
	// here: routing is wired after every node is up, so no request can
	// have observed the provisional identity.
	node.addr = ep.Addr()
	node.id = keyForAddr(node.addr)
	return node, nil
}

// registerReplicaMetrics exports one node slot's replication counters
// (DESIGN.md §14): sweep rounds, repairs, the current repair backlog, and
// the quorum-write tallies.
func (c *Cluster) registerReplicaMetrics(entity string, slot *atomic.Pointer[Node]) {
	reg := c.cfg.Obs
	labels := obs.Labels{"entity": entity}
	reg.Help("whopay_dht_sweep_rounds_total", "Anti-entropy sweep rounds completed by this DHT node.")
	reg.CounterFunc("whopay_dht_sweep_rounds_total", labels, func() int64 { return slot.Load().sweepRounds.Load() })
	reg.Help("whopay_dht_sweep_repairs_total", "Records repaired (pulled or pushed) by anti-entropy sweeps.")
	reg.CounterFunc("whopay_dht_sweep_repairs_total", labels, func() int64 { return slot.Load().sweepRepairs.Load() })
	reg.Help("whopay_dht_repair_backlog", "Divergent entries found in this node's last anti-entropy sweep.")
	reg.GaugeFunc("whopay_dht_repair_backlog", labels, func() float64 { return float64(slot.Load().repairBacklog.Load()) })
	reg.Help("whopay_dht_quorum_writes_total", "Quorum writes this node coordinated to a successful commit.")
	reg.CounterFunc("whopay_dht_quorum_writes_total", labels, func() int64 { return slot.Load().quorumWrites.Load() })
	reg.Help("whopay_dht_quorum_write_failures_total", "Quorum writes that could not gather W replica commits.")
	reg.CounterFunc("whopay_dht_quorum_write_failures_total", labels, func() int64 { return slot.Load().quorumFails.Load() })
}

// Restart crash-restarts node i: its endpoint and journal are dropped with
// no shutdown grace, and a replacement is recovered from the journal at the
// same address, in a fresh epoch. Requires Persistence (an in-memory node
// has nothing to recover from).
func (c *Cluster) Restart(i int) error {
	if c.cfg.Persistence == nil {
		return errors.New("dht: Restart needs Persistence")
	}
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("dht: no node %d", i)
	}
	old := c.nodes[i]
	old.stopSweeper()
	_ = old.ep.Close()
	_ = old.walLog.Close()
	node, err := c.startNode(i, old.addr)
	if err != nil {
		return err
	}
	node.ring = c.ring
	node.fingers = fingersFor(node.id, c.ring)
	c.nodes[i] = node
	close(node.started)
	node.startSweeper()
	return nil
}

// Kill crash-stops node i with no shutdown grace and no replacement: its
// endpoint closes mid-conversation and its journal handle drops. A later
// Restart(i) recovers it from the journal. The load harness's node-kill
// scenario is the caller.
func (c *Cluster) Kill(i int) error {
	if i < 0 || i >= len(c.nodes) {
		return fmt.Errorf("dht: no node %d", i)
	}
	node := c.nodes[i]
	node.stopSweeper()
	_ = node.ep.Close()
	if node.walLog != nil {
		_ = node.walLog.Close()
	}
	return nil
}

// fingersFor computes a Chord finger table: for each bit k, the successor
// of id + 2^k.
func fingersFor(id Key, ring []nodeRef) []nodeRef {
	var fingers []nodeRef
	for k := 0; k < 256; k++ {
		target := addPow2(id, k)
		i := sort.Search(len(ring), func(i int) bool { return !ring[i].id.Less(target) })
		if i == len(ring) {
			i = 0
		}
		f := ring[i]
		if len(fingers) == 0 || fingers[len(fingers)-1].addr != f.addr {
			fingers = append(fingers, f)
		}
	}
	return fingers
}

// addPow2 returns id + 2^k on the 256-bit ring.
func addPow2(id Key, k int) Key {
	var out Key
	copy(out[:], id[:])
	byteIdx := 31 - k/8
	carry := uint16(1) << (k % 8)
	for i := byteIdx; i >= 0 && carry > 0; i-- {
		sum := uint16(out[i]) + carry
		out[i] = byte(sum)
		carry = sum >> 8
	}
	return out
}

// Trust adds trusted writers to every node after construction — for
// deployments where the writer's key is only known once the cluster is up
// (a broker built against this cluster's bound addresses). The trust set is
// lock-free read-only state on the serve path, so Trust must be called
// before the cluster sees any traffic.
func (c *Cluster) Trust(pubs ...sig.PublicKey) {
	for _, node := range c.nodes {
		for _, pub := range pubs {
			node.trusted[string(pub)] = true
		}
	}
}

// Nodes exposes the cluster's nodes (tests/metrics).
func (c *Cluster) Nodes() []*Node { return c.nodes }

// Addrs returns the node addresses for client construction.
func (c *Cluster) Addrs() []bus.Address { return append([]bus.Address(nil), c.addrs...) }

// Close shuts down every node and releases their journals.
func (c *Cluster) Close() {
	for _, n := range c.nodes {
		n.stopSweeper()
		if n.ep != nil {
			_ = n.ep.Close()
		}
		if n.walLog != nil {
			_ = n.walLog.Close()
		}
	}
}

// SweepAll runs one synchronous anti-entropy round on every node and
// returns the total divergence found — the deterministic lever tests and
// convergence waits use instead of the background tickers.
func (c *Cluster) SweepAll() int {
	total := 0
	for _, n := range c.nodes {
		total += n.SweepOnce()
	}
	return total
}

// Divergence counts, across every key any node stores, the replica-set
// members whose copy is missing or version-mismatched — 0 means digest
// parity across every replica set. Reads racing live writes can inflate
// the count; call it on a quiesced cluster (the post-run audit does).
func (c *Cluster) Divergence() int {
	type holding struct {
		version uint64
		ok      bool
	}
	byAddr := make(map[bus.Address]*Node, len(c.nodes))
	for _, n := range c.nodes {
		byAddr[n.addr] = n
	}
	keys := make(map[Key]bool)
	for _, n := range c.nodes {
		n.store.Range(func(k Key, _ Record) bool {
			keys[k] = true
			return true
		})
	}
	divergent := 0
	for k := range keys {
		// Replica sets are ring-static, so any node's view serves.
		set := c.nodes[0].replicaSet(k)
		var want holding
		views := make([]holding, 0, len(set))
		for _, ref := range set {
			node := byAddr[ref.addr]
			if node == nil {
				continue
			}
			rec, ok := node.store.Get(k)
			h := holding{version: rec.Version, ok: ok}
			views = append(views, h)
			if ok && (!want.ok || rec.Version > want.version) {
				want = h
			}
		}
		for _, h := range views {
			if !h.ok || h.version != want.version {
				divergent++
			}
		}
	}
	return divergent
}

// WaitConverged polls until Divergence reaches zero or the timeout lapses,
// sweeping synchronously between polls so convergence does not depend on
// background ticker phase. Returns whether parity was reached.
func (c *Cluster) WaitConverged(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if c.Divergence() == 0 {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		c.SweepAll()
		time.Sleep(10 * time.Millisecond)
	}
}
