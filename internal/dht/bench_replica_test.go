package dht

import (
	"testing"
	"time"

	"whopay/internal/dht/replica"
)

// The hot-coin read path, three ways: lease-cached quorum reads (the
// DESIGN.md §14 fast path), uncached quorum reads (every Get pays R
// probes), and the legacy single-copy read. The lease numbers are the
// evidence behind results/dht_replica_bench.txt.

func BenchmarkGetHotLeaseCached(b *testing.B) {
	f, c := replicatedFixture(b, 3, replica.Config{N: 3, W: 2, R: 2, LeaseTTL: time.Second}, false, 0)
	_, rec := f.ownedRecord(b, 1, "hot-coin-binding")
	if err := c.Put(rec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := c.Get(rec.Key); err != nil || !found {
			b.Fatalf("get = %v, %v", found, err)
		}
	}
}

func BenchmarkGetHotQuorumUncached(b *testing.B) {
	f, c := replicatedFixture(b, 3, replica.Config{N: 3, W: 2, R: 2}, false, 0)
	_, rec := f.ownedRecord(b, 1, "hot-coin-binding")
	if err := c.Put(rec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := c.quorumGet(rec.Key); err != nil || !found {
			b.Fatalf("quorum get = %v, %v", found, err)
		}
	}
}

func BenchmarkGetHotLegacySingleCopy(b *testing.B) {
	f, c := newFixture(b, 3, 3, OneHop)
	_, rec := f.ownedRecord(b, 1, "hot-coin-binding")
	if err := c.Put(rec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, found, err := c.Get(rec.Key); err != nil || !found {
			b.Fatalf("get = %v, %v", found, err)
		}
	}
}

func BenchmarkQuorumPut(b *testing.B) {
	f, c := replicatedFixture(b, 3, replica.Config{N: 3, W: 2, R: 2}, false, 0)
	kp, rec := f.ownedRecord(b, 1, "binding")
	if err := c.Put(rec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := SignRecord(f.suite, kp, rec.Key, uint64(i+2), []byte("binding"))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Put(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLegacyPut(b *testing.B) {
	f, c := newFixture(b, 3, 3, OneHop)
	kp, rec := f.ownedRecord(b, 1, "binding")
	if err := c.Put(rec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := SignRecord(f.suite, kp, rec.Key, uint64(i+2), []byte("binding"))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Put(r); err != nil {
			b.Fatal(err)
		}
	}
}
