package dht

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"whopay/internal/bus"
	"whopay/internal/sig"
)

type fixture struct {
	net     *bus.Memory
	cluster *Cluster
	suite   sig.Suite
	broker  sig.KeyPair
}

func newFixture(t testing.TB, nodes, replicas int, mode Mode) (*fixture, *Client) {
	t.Helper()
	net := bus.NewMemory()
	scheme := sig.NewNull(400)
	suite := sig.Suite{Scheme: scheme}
	broker, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewCluster(net, scheme, nodes, replicas, broker.Public)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ep, err := net.Listen("client", func(bus.Address, any) (any, error) { return Ack{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ep, cluster.Addrs(), mode)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{net: net, cluster: cluster, suite: suite, broker: broker}, client
}

func (f *fixture) ownedRecord(t testing.TB, version uint64, value string) (sig.KeyPair, Record) {
	t.Helper()
	kp, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := SignRecord(f.suite, kp, KeyFor(kp.Public), version, []byte(value))
	if err != nil {
		t.Fatal(err)
	}
	return kp, rec
}

func TestPutGetOneHop(t *testing.T) {
	f, c := newFixture(t, 8, 3, OneHop)
	_, rec := f.ownedRecord(t, 1, "binding-v1")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !found || !bytes.Equal(got.Value, rec.Value) {
		t.Fatalf("Get = %+v found=%v", got, found)
	}
}

func TestPutGetIterative(t *testing.T) {
	f, c := newFixture(t, 16, 2, Iterative)
	for i := 0; i < 20; i++ {
		_, rec := f.ownedRecord(t, 1, fmt.Sprintf("value-%d", i))
		if err := c.Put(rec); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
		got, found, err := c.Get(rec.Key)
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
		if !found || !bytes.Equal(got.Value, rec.Value) {
			t.Fatalf("Get %d mismatch", i)
		}
	}
}

func TestGetMissing(t *testing.T) {
	_, c := newFixture(t, 4, 2, OneHop)
	var key Key
	key[0] = 0xaa
	_, found, err := c.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Fatal("found a record that was never written")
	}
}

func TestWriteACLOwnerOnly(t *testing.T) {
	f, c := newFixture(t, 4, 2, OneHop)
	owner, rec := f.ownedRecord(t, 1, "legit")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	// An attacker with a different key cannot write to the owner's slot.
	attacker, err := f.suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	forged, err := SignRecord(f.suite, attacker, KeyFor(owner.Public), 2, []byte("stolen"))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Put(forged)
	var remote *bus.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("forged put = %v, want remote ACL error", err)
	}
	got, _, err := c.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, []byte("legit")) {
		t.Fatal("forged write overwrote the record")
	}
}

func TestTrustedWriterCanWriteAnywhere(t *testing.T) {
	f, c := newFixture(t, 4, 2, OneHop)
	owner, rec := f.ownedRecord(t, 1, "owner-write")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	// The broker (trusted) overwrites with a newer version — the
	// downtime path.
	brokerRec, err := SignRecord(f.suite, f.broker, KeyFor(owner.Public), 2, []byte("broker-write"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(brokerRec); err != nil {
		t.Fatalf("trusted put: %v", err)
	}
	got, _, err := c.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, []byte("broker-write")) {
		t.Fatal("trusted write not applied")
	}
}

func TestBadSignatureRejected(t *testing.T) {
	f, c := newFixture(t, 4, 2, OneHop)
	_, rec := f.ownedRecord(t, 1, "v")
	rec.Value = []byte("tampered after signing")
	if err := c.Put(rec); err == nil {
		t.Fatal("tampered record accepted")
	}
}

func TestStaleVersionRejected(t *testing.T) {
	f, c := newFixture(t, 4, 2, OneHop)
	owner, rec2 := f.ownedRecord(t, 2, "v2")
	if err := c.Put(rec2); err != nil {
		t.Fatal(err)
	}
	rec1, err := SignRecord(f.suite, owner, rec2.Key, 1, []byte("v1-replay"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(rec1); err == nil {
		t.Fatal("stale version accepted")
	}
	// Same version, same bytes: idempotent OK.
	if err := c.Put(rec2); err != nil {
		t.Fatalf("idempotent re-put rejected: %v", err)
	}
	// Same version, different bytes: conflict (double-spend signature).
	conflict, err := SignRecord(f.suite, owner, rec2.Key, 2, []byte("v2-conflicting"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(conflict); err == nil {
		t.Fatal("conflicting same-version write accepted")
	}
}

func TestReplication(t *testing.T) {
	f, c := newFixture(t, 6, 3, OneHop)
	_, rec := f.ownedRecord(t, 1, "replicated")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, n := range f.cluster.Nodes() {
		if _, ok := n.store.Get(rec.Key); ok {
			holders++
		}
	}
	if holders != 3 {
		t.Fatalf("record on %d nodes, want 3", holders)
	}
}

func TestFailoverToReplica(t *testing.T) {
	f, c := newFixture(t, 6, 3, OneHop)
	_, rec := f.ownedRecord(t, 1, "survives")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	// Kill the primary; reads must fall back to a replica.
	primary := c.responsible(rec.Key)[0].addr
	f.net.SetOnline(primary, false)
	got, found, err := c.Get(rec.Key)
	if err != nil {
		t.Fatalf("Get after primary failure: %v", err)
	}
	if !found || !bytes.Equal(got.Value, rec.Value) {
		t.Fatal("replica read mismatch")
	}
}

func TestAllReplicasDown(t *testing.T) {
	f, c := newFixture(t, 3, 3, OneHop)
	_, rec := f.ownedRecord(t, 1, "v")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	for _, addr := range f.cluster.Addrs() {
		f.net.SetOnline(addr, false)
	}
	if _, _, err := c.Get(rec.Key); !errors.Is(err, ErrLookupFailed) {
		t.Fatalf("got %v, want ErrLookupFailed", err)
	}
}

func TestSubscribeNotify(t *testing.T) {
	f, _ := newFixture(t, 4, 2, OneHop)
	var mu sync.Mutex
	var notified []Record
	watcherEp, err := f.net.Listen("watcher", func(from bus.Address, msg any) (any, error) {
		if n, ok := msg.(Notify); ok {
			mu.Lock()
			notified = append(notified, n.Rec)
			mu.Unlock()
		}
		return Ack{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := NewClient(watcherEp, f.cluster.Addrs(), OneHop)
	if err != nil {
		t.Fatal(err)
	}
	owner, rec1 := f.ownedRecord(t, 1, "v1")
	if err := wc.Subscribe(rec1.Key, "watcher"); err != nil {
		t.Fatal(err)
	}
	if err := wc.Put(rec1); err != nil {
		t.Fatal(err)
	}
	rec2, err := SignRecord(f.suite, owner, rec1.Key, 2, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Put(rec2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(notified) != 2 {
		t.Fatalf("got %d notifications, want 2", len(notified))
	}
	if !bytes.Equal(notified[1].Value, []byte("v2")) {
		t.Fatal("second notification payload wrong")
	}
}

func TestUnsubscribeStopsNotifications(t *testing.T) {
	f, _ := newFixture(t, 4, 2, OneHop)
	var mu sync.Mutex
	count := 0
	watcherEp, err := f.net.Listen("watcher", func(from bus.Address, msg any) (any, error) {
		if _, ok := msg.(Notify); ok {
			mu.Lock()
			count++
			mu.Unlock()
		}
		return Ack{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wc, err := NewClient(watcherEp, f.cluster.Addrs(), OneHop)
	if err != nil {
		t.Fatal(err)
	}
	owner, rec1 := f.ownedRecord(t, 1, "v1")
	if err := wc.Subscribe(rec1.Key, "watcher"); err != nil {
		t.Fatal(err)
	}
	if err := wc.Put(rec1); err != nil {
		t.Fatal(err)
	}
	if err := wc.Unsubscribe(rec1.Key, "watcher"); err != nil {
		t.Fatal(err)
	}
	rec2, err := SignRecord(f.suite, owner, rec1.Key, 2, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := wc.Put(rec2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 1 {
		t.Fatalf("got %d notifications, want 1", count)
	}
}

func TestOfflineWatcherDoesNotBlockWrites(t *testing.T) {
	f, _ := newFixture(t, 4, 2, OneHop)
	watcherEp, err := f.net.Listen("watcher", func(bus.Address, any) (any, error) { return Ack{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	wc, err := NewClient(watcherEp, f.cluster.Addrs(), OneHop)
	if err != nil {
		t.Fatal(err)
	}
	_, rec := f.ownedRecord(t, 1, "v1")
	if err := wc.Subscribe(rec.Key, "watcher"); err != nil {
		t.Fatal(err)
	}
	f.net.SetOnline("watcher", false)
	if err := wc.Put(rec); err != nil {
		t.Fatalf("put with offline watcher: %v", err)
	}
}

func TestEmptyMembership(t *testing.T) {
	net := bus.NewMemory()
	ep, err := net.Listen("x", func(bus.Address, any) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(ep, nil, OneHop); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("got %v, want ErrNoNodes", err)
	}
}

func TestClusterValidation(t *testing.T) {
	net := bus.NewMemory()
	if _, err := NewCluster(net, sig.NewNull(1), 0, 1); err == nil {
		t.Fatal("NewCluster accepted 0 nodes")
	}
	// Replicas clamp to node count.
	c, err := NewCluster(net, sig.NewNull(1), 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.nodes[0].replicas != 2 {
		t.Fatalf("replicas = %d, want clamped 2", c.nodes[0].replicas)
	}
}

func TestBetween(t *testing.T) {
	k := func(b byte) Key {
		var key Key
		key[0] = b
		return key
	}
	cases := []struct {
		a, b, x byte
		want    bool
	}{
		{10, 20, 15, true},
		{10, 20, 10, false}, // open at a
		{10, 20, 20, true},  // closed at b
		{10, 20, 25, false},
		{20, 10, 25, true},  // wrap
		{20, 10, 5, true},   // wrap
		{20, 10, 15, false}, // wrap, outside
		{10, 10, 99, true},  // full circle
	}
	for _, tc := range cases {
		if got := between(k(tc.a), k(tc.b), k(tc.x)); got != tc.want {
			t.Errorf("between(%d,%d,%d) = %v, want %v", tc.a, tc.b, tc.x, got, tc.want)
		}
	}
}

func TestAddPow2(t *testing.T) {
	var id Key
	id[31] = 0xff
	got := addPow2(id, 0) // +1 → carry into byte 30
	if got[31] != 0 || got[30] != 1 {
		t.Fatalf("addPow2 carry wrong: %v %v", got[31], got[30])
	}
	// +2^8 = byte 30 += 1
	var id2 Key
	got2 := addPow2(id2, 8)
	if got2[30] != 1 {
		t.Fatalf("addPow2(,8)[30] = %d, want 1", got2[30])
	}
}

// TestIterativeMatchesOneHop: both routing modes agree on the responsible
// node for random keys.
func TestIterativeMatchesOneHop(t *testing.T) {
	f, oneHop := newFixture(t, 12, 1, OneHop)
	ep, err := f.net.Listen("client2", func(bus.Address, any) (any, error) { return Ack{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	iter, err := NewClient(ep, f.cluster.Addrs(), Iterative)
	if err != nil {
		t.Fatal(err)
	}
	fn := func(raw [32]byte) bool {
		key := Key(raw)
		direct := oneHop.responsible(key)[0].addr
		routed, err := iter.locate(key)
		return err == nil && routed == direct
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestKeysBalanced: records spread across nodes rather than piling on one.
func TestKeysBalanced(t *testing.T) {
	f, c := newFixture(t, 8, 1, OneHop)
	for i := 0; i < 200; i++ {
		_, rec := f.ownedRecord(t, 1, "v")
		if err := c.Put(rec); err != nil {
			t.Fatal(err)
		}
	}
	max := 0
	for _, n := range f.cluster.Nodes() {
		if s := n.StoreSize(); s > max {
			max = s
		}
	}
	if max == 200 {
		t.Fatal("all records landed on a single node")
	}
}

func BenchmarkPutOneHop(b *testing.B) {
	net := bus.NewMemory()
	scheme := sig.NewNull(401)
	suite := sig.Suite{Scheme: scheme}
	cluster, err := NewCluster(net, scheme, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	ep, err := net.Listen("bench", func(bus.Address, any) (any, error) { return Ack{}, nil })
	if err != nil {
		b.Fatal(err)
	}
	client, err := NewClient(ep, cluster.Addrs(), OneHop)
	if err != nil {
		b.Fatal(err)
	}
	kp, err := suite.GenerateKey()
	if err != nil {
		b.Fatal(err)
	}
	key := KeyFor(kp.Public)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := SignRecord(suite, kp, key, uint64(i+1), []byte("v"))
		if err != nil {
			b.Fatal(err)
		}
		if err := client.Put(rec); err != nil {
			b.Fatal(err)
		}
	}
}
