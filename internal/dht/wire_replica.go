package dht

import (
	"whopay/internal/bus"
	"whopay/internal/wire"
)

// Fixed-layout wire codecs for the replication subsystem's messages
// (tags 48–57, DESIGN.md §14). Same canonical-encoding contract as the
// rest of the registry: decode→re-encode is byte-identical.

func appendWireKeyVers(dst []byte, kvs []KeyVer) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(kvs)))
	for _, kv := range kvs {
		dst = wire.AppendRaw(dst, kv.Key[:])
		dst = wire.AppendU64(dst, kv.Version)
	}
	return dst
}

func decodeWireKeyVers(d *wire.Decoder) ([]KeyVer, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	var kvs []KeyVer
	for i := uint64(0); i < n; i++ {
		var kv KeyVer
		if err := d.Fixed(kv.Key[:]); err != nil {
			return nil, err
		}
		if kv.Version, err = d.U64(); err != nil {
			return nil, err
		}
		kvs = append(kvs, kv)
	}
	return kvs, nil
}

func appendWireSubStates(dst []byte, subs []SubState) []byte {
	dst = wire.AppendUvarint(dst, uint64(len(subs)))
	for _, s := range subs {
		dst = wire.AppendRaw(dst, s.Key[:])
		dst = wire.AppendUvarint(dst, uint64(len(s.Watchers)))
		for _, w := range s.Watchers {
			dst = wire.AppendString(dst, string(w))
		}
	}
	return dst
}

func decodeWireSubStates(d *wire.Decoder) ([]SubState, error) {
	n, err := d.Uvarint()
	if err != nil {
		return nil, err
	}
	var subs []SubState
	for i := uint64(0); i < n; i++ {
		var s SubState
		if err := d.Fixed(s.Key[:]); err != nil {
			return nil, err
		}
		wn, err := d.Uvarint()
		if err != nil {
			return nil, err
		}
		for j := uint64(0); j < wn; j++ {
			ws, err := d.String()
			if err != nil {
				return nil, err
			}
			s.Watchers = append(s.Watchers, bus.Address(ws))
		}
		subs = append(subs, s)
	}
	return subs, nil
}

func registerReplicaWireCodecs() {
	wire.Register(tagQuorumPutMsg, "dht.QuorumPutMsg", QuorumPutMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(QuorumPutMsg)
			return m.Rec.AppendWire(dst), nil
		},
		func(d *wire.Decoder) (any, error) {
			rec, err := DecodeWireRecord(d)
			if err != nil {
				return nil, err
			}
			return QuorumPutMsg{Rec: rec}, nil
		})
	wire.Register(tagQuorumAck, "dht.QuorumAck", QuorumAck{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(QuorumAck)
			dst = wire.AppendUvarint(dst, uint64(m.Committed))
			dst = wire.AppendUvarint(dst, uint64(m.Required))
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m QuorumAck
			c, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			r, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			m.Committed, m.Required = uint32(c), uint32(r)
			return m, nil
		})
	wire.Register(tagDigestMsg, "dht.DigestMsg", DigestMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(DigestMsg)
			return wire.AppendRaw(dst, m.Key[:]), nil
		},
		func(d *wire.Decoder) (any, error) {
			var m DigestMsg
			if err := d.Fixed(m.Key[:]); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagDigestResp, "dht.DigestResp", DigestResp{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(DigestResp)
			dst = wire.AppendBool(dst, m.Found)
			dst = wire.AppendU64(dst, m.Version)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m DigestResp
			var err error
			if m.Found, err = d.Bool(); err != nil {
				return nil, err
			}
			if m.Version, err = d.U64(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagSweepMsg, "dht.SweepMsg", SweepMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(SweepMsg)
			dst = wire.AppendString(dst, string(m.From))
			dst = wire.AppendRaw(dst, m.Sum[:])
			dst = wire.AppendU64(dst, m.Count)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m SweepMsg
			s, err := d.String()
			if err != nil {
				return nil, err
			}
			m.From = bus.Address(s)
			if err := d.Fixed(m.Sum[:]); err != nil {
				return nil, err
			}
			if m.Count, err = d.U64(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagSweepResp, "dht.SweepResp", SweepResp{},
		func(dst []byte, v any) ([]byte, error) {
			return wire.AppendBool(dst, v.(SweepResp).Match), nil
		},
		func(d *wire.Decoder) (any, error) {
			match, err := d.Bool()
			if err != nil {
				return nil, err
			}
			return SweepResp{Match: match}, nil
		})
	wire.Register(tagSweepKeysMsg, "dht.SweepKeysMsg", SweepKeysMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(SweepKeysMsg)
			dst = wire.AppendString(dst, string(m.From))
			dst = appendWireKeyVers(dst, m.Recs)
			dst = appendWireSubStates(dst, m.Subs)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m SweepKeysMsg
			s, err := d.String()
			if err != nil {
				return nil, err
			}
			m.From = bus.Address(s)
			if m.Recs, err = decodeWireKeyVers(d); err != nil {
				return nil, err
			}
			if m.Subs, err = decodeWireSubStates(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagSweepKeysResp, "dht.SweepKeysResp", SweepKeysResp{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(SweepKeysResp)
			dst = wire.AppendUvarint(dst, uint64(len(m.Newer)))
			for _, rec := range m.Newer {
				dst = rec.AppendWire(dst)
			}
			dst = wire.AppendUvarint(dst, uint64(len(m.Want)))
			for _, k := range m.Want {
				dst = wire.AppendRaw(dst, k[:])
			}
			dst = appendWireSubStates(dst, m.Subs)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m SweepKeysResp
			n, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			for i := uint64(0); i < n; i++ {
				rec, err := DecodeWireRecord(d)
				if err != nil {
					return nil, err
				}
				m.Newer = append(m.Newer, rec)
			}
			if n, err = d.Uvarint(); err != nil {
				return nil, err
			}
			for i := uint64(0); i < n; i++ {
				var k Key
				if err := d.Fixed(k[:]); err != nil {
					return nil, err
				}
				m.Want = append(m.Want, k)
			}
			if m.Subs, err = decodeWireSubStates(d); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagLeaseGetMsg, "dht.LeaseGetMsg", LeaseGetMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(LeaseGetMsg)
			return wire.AppendRaw(dst, m.Key[:]), nil
		},
		func(d *wire.Decoder) (any, error) {
			var m LeaseGetMsg
			if err := d.Fixed(m.Key[:]); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagLeaseResp, "dht.LeaseResp", LeaseResp{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(LeaseResp)
			dst = m.Rec.AppendWire(dst)
			dst = wire.AppendBool(dst, m.Found)
			dst = wire.AppendUvarint(dst, uint64(m.GrantMs))
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m LeaseResp
			var err error
			if m.Rec, err = DecodeWireRecord(d); err != nil {
				return nil, err
			}
			if m.Found, err = d.Bool(); err != nil {
				return nil, err
			}
			g, err := d.Uvarint()
			if err != nil {
				return nil, err
			}
			m.GrantMs = uint32(g)
			return m, nil
		})
}
