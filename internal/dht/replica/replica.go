// Package replica holds the building blocks of the DHT replication
// subsystem (DESIGN.md §14): the quorum parameters, the range digest
// anti-entropy compares replicas with, and the TTL lease cache hot readers
// shed load through. The pieces are deliberately free of DHT types — the
// dht package wires them through Node, Client, and Cluster — so the quorum
// arithmetic and cache policy stay testable in isolation.
//
// The consistency model is classic N/W/R (Hoepman's replicated-witness
// analysis; Dynamo's sloppy-quorum ancestry without the sloppiness): a
// write commits on W of N replicas before acking, a read consults R, and
// W+R > N guarantees every read quorum overlaps every committed write
// quorum — so a completed quorum write is never followed by a quorum read
// returning an older version, which is exactly the double-spend window the
// paper's real-time detection must not have.
package replica

import "time"

// Defaults. 3/2/2 is the smallest configuration that survives one node
// failure on both paths while keeping read and write quorums overlapping.
const (
	DefaultN = 3
	DefaultW = 2
	DefaultR = 2
	// DefaultSweepInterval paces the background anti-entropy sweep.
	DefaultSweepInterval = 250 * time.Millisecond
	// DefaultLeaseTTL bounds how stale a lease-cached read may be: the
	// worst-case real-time-detection delay a reader trades for shedding
	// the hot-coin read storm.
	DefaultLeaseTTL = 150 * time.Millisecond
	// DefaultLeaseCap bounds the lease cache's footprint.
	DefaultLeaseCap = 4096
)

// SweepDisabled turns the background sweeper off (manual SweepOnce only —
// what deterministic tests use).
const SweepDisabled = time.Duration(-1)

// Config configures the replication subsystem. The zero value of every
// field means "use the default"; a nil *Config anywhere in the stack keeps
// the legacy single-copy behavior and error shapes exact.
type Config struct {
	// N is the replica-set size, W the write quorum, R the read quorum.
	N, W, R int
	// SweepInterval paces the per-node anti-entropy sweep (0: default;
	// SweepDisabled: background sweeping off).
	SweepInterval time.Duration
	// LeaseTTL is both the grant a node attaches to lease reads and the
	// cap a client applies to cached entries.
	LeaseTTL time.Duration
	// LeaseCap bounds the client's lease-cache entry count.
	LeaseCap int
}

// WithDefaults fills zero fields and clamps the quorums to a cluster of
// the given size: N ≤ nodes, 1 ≤ W ≤ N, 1 ≤ R ≤ N, and R is raised until
// W+R > N so the overlap guarantee survives aggressive hand-tuning.
func (c Config) WithDefaults(nodes int) Config {
	if c.N <= 0 {
		c.N = DefaultN
	}
	if nodes > 0 && c.N > nodes {
		c.N = nodes
	}
	if c.W <= 0 {
		c.W = DefaultW
	}
	if c.W > c.N {
		c.W = c.N
	}
	if c.R <= 0 {
		c.R = DefaultR
	}
	if c.R > c.N {
		c.R = c.N
	}
	if c.W+c.R <= c.N {
		c.R = c.N - c.W + 1
	}
	if c.SweepInterval == 0 {
		c.SweepInterval = DefaultSweepInterval
	}
	if c.LeaseTTL <= 0 {
		c.LeaseTTL = DefaultLeaseTTL
	}
	if c.LeaseCap <= 0 {
		c.LeaseCap = DefaultLeaseCap
	}
	return c
}
