package replica

import (
	"sync"
	"sync/atomic"
	"time"
)

// LeaseCache is the client-side hot-read shed: a bounded TTL cache of the
// last record seen per key. A hit serves a repeated read of a hot binding
// locally; the TTL (capped by the node's lease grant) bounds how stale that
// read can be, and Subscribe/Notify traffic refreshes or invalidates
// entries ahead of expiry. Entries also remember the highest version ever
// observed per key after the value lapses, which is how the client detects
// (and counts) a quorum read that would travel backwards in time.
type LeaseCache struct {
	ttl time.Duration
	cap int

	mu sync.Mutex
	m  map[[32]byte]*leaseEntry

	hits, misses  atomic.Uint64
	staleObserved atomic.Uint64
}

type leaseEntry struct {
	val     any
	version uint64
	exp     time.Time
	live    bool // false: version watermark only, val already lapsed
}

// NewLeaseCache builds a cache holding entries for up to ttl, bounded to
// cap entries.
func NewLeaseCache(ttl time.Duration, capacity int) *LeaseCache {
	if ttl <= 0 {
		ttl = DefaultLeaseTTL
	}
	if capacity <= 0 {
		capacity = DefaultLeaseCap
	}
	return &LeaseCache{ttl: ttl, cap: capacity, m: make(map[[32]byte]*leaseEntry)}
}

// Get returns the cached value when the lease is still live.
func (c *LeaseCache) Get(key [32]byte) (any, bool) {
	now := time.Now()
	c.mu.Lock()
	e := c.m[key]
	if e != nil && e.live && now.Before(e.exp) {
		v := e.val
		c.mu.Unlock()
		c.hits.Add(1)
		return v, true
	}
	if e != nil && e.live {
		// Lapsed: drop the value, keep the version watermark.
		e.live = false
		e.val = nil
	}
	c.mu.Unlock()
	c.misses.Add(1)
	return nil, false
}

// Put caches val at key for min(grant, ttl); grant ≤ 0 means the full ttl.
// A value older than the key's version watermark is refused and counted —
// that is a read that traveled backwards in time (a stale quorum read, or
// a notify raced by a newer one).
func (c *LeaseCache) Put(key [32]byte, val any, version uint64, grant time.Duration) bool {
	ttl := c.ttl
	if grant > 0 && grant < ttl {
		ttl = grant
	}
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.m[key]; e != nil {
		if version < e.version {
			c.staleObserved.Add(1)
			return false
		}
		e.val, e.version, e.exp, e.live = val, version, now.Add(ttl), true
		return true
	}
	if len(c.m) >= c.cap {
		c.evictLocked(now)
	}
	c.m[key] = &leaseEntry{val: val, version: version, exp: now.Add(ttl), live: true}
	return true
}

// Invalidate drops key's cached value (the watermark survives).
func (c *LeaseCache) Invalidate(key [32]byte) {
	c.mu.Lock()
	if e := c.m[key]; e != nil {
		e.live = false
		e.val = nil
	}
	c.mu.Unlock()
}

// evictLocked frees one slot: an expired entry if any, else an arbitrary
// one (map order — effectively random, fine for a shed cache).
func (c *LeaseCache) evictLocked(now time.Time) {
	for k, e := range c.m {
		if !e.live || now.After(e.exp) {
			delete(c.m, k)
			return
		}
	}
	for k := range c.m {
		delete(c.m, k)
		return
	}
}

// Len reports the entry count (tests).
func (c *LeaseCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns cumulative hits, misses, and backwards-in-time values
// observed.
func (c *LeaseCache) Stats() (hits, misses, stale uint64) {
	return c.hits.Load(), c.misses.Load(), c.staleObserved.Load()
}
