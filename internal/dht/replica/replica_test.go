package replica

import (
	"fmt"
	"testing"
	"time"
)

func TestWithDefaultsFillsAndClamps(t *testing.T) {
	cases := []struct {
		in      Config
		nodes   int
		n, w, r int
	}{
		{Config{}, 5, 3, 2, 2},                 // defaults
		{Config{}, 2, 2, 2, 2},                 // N and the default quorums clamped to the cluster
		{Config{N: 5, W: 1, R: 1}, 5, 5, 1, 5}, // R raised until W+R > N
		{Config{N: 3, W: 3, R: 3}, 2, 2, 2, 2}, // everything clamped to 2 nodes
		{Config{N: 4, W: 2, R: 2}, 4, 4, 2, 3}, // W+R == N is not enough overlap
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%+v@%d", c.in, c.nodes), func(t *testing.T) {
			got := c.in.WithDefaults(c.nodes)
			if got.N != c.n || got.W != c.w || got.R != c.r {
				t.Fatalf("got %d/%d/%d, want %d/%d/%d", got.N, got.W, got.R, c.n, c.w, c.r)
			}
			if got.W+got.R <= got.N {
				t.Fatalf("quorums do not overlap: %d/%d/%d", got.N, got.W, got.R)
			}
			if got.SweepInterval == 0 || got.LeaseTTL <= 0 || got.LeaseCap <= 0 {
				t.Fatalf("defaults not filled: %+v", got)
			}
		})
	}
}

func TestWithDefaultsKeepsSweepDisabled(t *testing.T) {
	got := Config{SweepInterval: SweepDisabled}.WithDefaults(3)
	if got.SweepInterval != SweepDisabled {
		t.Fatalf("SweepDisabled overwritten: %v", got.SweepInterval)
	}
}

func TestDigestOrderAndContentSensitive(t *testing.T) {
	key1, key2 := []byte("k1.............................."), []byte("k2..............................")
	sum := func(build func(*Digest)) [32]byte {
		d := NewDigest()
		build(d)
		s, _ := d.Sum()
		return s
	}
	a := sum(func(d *Digest) { d.Record(key1, 1); d.Record(key2, 2) })
	b := sum(func(d *Digest) { d.Record(key1, 1); d.Record(key2, 2) })
	if a != b {
		t.Fatal("identical input digests differ")
	}
	if a == sum(func(d *Digest) { d.Record(key2, 2); d.Record(key1, 1) }) {
		t.Fatal("digest insensitive to order")
	}
	if a == sum(func(d *Digest) { d.Record(key1, 1); d.Record(key2, 3) }) {
		t.Fatal("digest insensitive to version")
	}
	if a == sum(func(d *Digest) { d.Record(key1, 1); d.Record(key2, 2); d.Subs(key1, []string{"w"}) }) {
		t.Fatal("digest insensitive to watcher sets")
	}
	_, cnt := func() ([32]byte, uint64) {
		d := NewDigest()
		d.Record(key1, 1)
		d.Subs(key1, []string{"w"})
		return d.Sum()
	}()
	if cnt != 2 {
		t.Fatalf("count = %d, want 2", cnt)
	}
}

func TestLeaseCacheHitAndExpiry(t *testing.T) {
	c := NewLeaseCache(30*time.Millisecond, 8)
	key := [32]byte{1}
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, "v1", 1, 0)
	if v, ok := c.Get(key); !ok || v != "v1" {
		t.Fatalf("get = %v, %v", v, ok)
	}
	time.Sleep(40 * time.Millisecond)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after TTL")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 2 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
}

func TestLeaseCacheGrantCapsTTL(t *testing.T) {
	c := NewLeaseCache(time.Hour, 8)
	key := [32]byte{2}
	c.Put(key, "v", 1, 10*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	if _, ok := c.Get(key); ok {
		t.Fatal("grant did not cap the lease")
	}
}

// TestLeaseCacheWatermarkRefusesBackwards is the stale-quorum-read detector:
// after an entry lapses, the version watermark survives, and an older record
// arriving later is refused and counted.
func TestLeaseCacheWatermarkRefusesBackwards(t *testing.T) {
	c := NewLeaseCache(10*time.Millisecond, 8)
	key := [32]byte{3}
	c.Put(key, "v5", 5, 0)
	time.Sleep(20 * time.Millisecond)
	if _, ok := c.Get(key); ok {
		t.Fatal("lease should have lapsed")
	}
	if c.Put(key, "v3", 3, 0) {
		t.Fatal("backwards-in-time put accepted")
	}
	if _, _, stale := c.Stats(); stale != 1 {
		t.Fatalf("stale = %d, want 1", stale)
	}
	if !c.Put(key, "v5b", 5, 0) {
		t.Fatal("same-version put refused")
	}
	if v, ok := c.Get(key); !ok || v != "v5b" {
		t.Fatalf("get after refresh = %v, %v", v, ok)
	}
}

func TestLeaseCacheCapEvicts(t *testing.T) {
	c := NewLeaseCache(time.Hour, 4)
	for i := 0; i < 10; i++ {
		c.Put([32]byte{byte(i)}, i, 1, 0)
	}
	if c.Len() > 4 {
		t.Fatalf("len = %d, want ≤ 4", c.Len())
	}
}

func TestLeaseCacheInvalidateKeepsWatermark(t *testing.T) {
	c := NewLeaseCache(time.Hour, 8)
	key := [32]byte{4}
	c.Put(key, "v7", 7, 0)
	c.Invalidate(key)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after invalidate")
	}
	if c.Put(key, "v2", 2, 0) {
		t.Fatal("watermark lost on invalidate")
	}
}
