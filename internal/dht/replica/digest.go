package replica

import (
	"crypto/sha256"
	"encoding/binary"
)

// Digest accumulates a canonical hash over one replica's view of a shared
// key range: every (key, version) pair plus every (key, watcher set)
// subscription entry, fed in sorted order by the caller. Two replicas whose
// digests match hold identical shared state, so an anti-entropy round
// between converged neighbors costs exactly one message pair.
type Digest struct {
	h     [32]byte // running chain: h = SHA-256(h ‖ entry)
	count uint64
}

// NewDigest returns an empty digest.
func NewDigest() *Digest { return &Digest{} }

// chain folds one canonical entry into the running hash.
func (d *Digest) chain(tag byte, parts ...[]byte) {
	hh := sha256.New()
	hh.Write(d.h[:])
	hh.Write([]byte{tag})
	var lenBuf [8]byte
	for _, p := range parts {
		binary.BigEndian.PutUint64(lenBuf[:], uint64(len(p)))
		hh.Write(lenBuf[:])
		hh.Write(p)
	}
	hh.Sum(d.h[:0])
	d.count++
}

// Record folds one stored record's identity (key, version) in.
func (d *Digest) Record(key []byte, version uint64) {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], version)
	d.chain(0x01, key, v[:])
}

// Subs folds one key's watcher set in. Watchers must be sorted.
func (d *Digest) Subs(key []byte, watchers []string) {
	parts := make([][]byte, 0, 1+len(watchers))
	parts = append(parts, key)
	for _, w := range watchers {
		parts = append(parts, []byte(w))
	}
	d.chain(0x02, parts...)
}

// Sum returns the digest value and the number of entries folded in.
func (d *Digest) Sum() ([32]byte, uint64) { return d.h, d.count }
