package dht

import (
	"whopay/internal/bus"
	"whopay/internal/sig"
	"whopay/internal/wire"
)

// Fixed-layout wire codecs (internal/wire) for the DHT's messages — the
// binding-list put/get traffic the paper's real-time double-spending
// detection turns into the hottest wire path in the system.

// Wire type tags for DHT messages. Part of the wire contract: stable across
// versions, never reused.
const (
	tagPutMsg   = 40
	tagGetMsg   = 41
	tagGetResp  = 42
	tagFindMsg  = 43
	tagFindResp = 44
	tagSubMsg   = 45
	tagNotify   = 46
	tagAck      = 47

	// Replication subsystem (DESIGN.md §14).
	tagQuorumPutMsg  = 48
	tagQuorumAck     = 49
	tagDigestMsg     = 50
	tagDigestResp    = 51
	tagSweepMsg      = 52
	tagSweepResp     = 53
	tagSweepKeysMsg  = 54
	tagSweepKeysResp = 55
	tagLeaseGetMsg   = 56
	tagLeaseResp     = 57
)

// AppendWire appends the record's wire encoding to dst. Epoch crosses only
// between nodes (replica fan-out); writers never set it, but the codec
// carries it so replicas fence exactly as the accepting node decided.
func (r *Record) AppendWire(dst []byte) []byte {
	dst = wire.AppendRaw(dst, r.Key[:])
	dst = wire.AppendU64(dst, r.Version)
	dst = wire.AppendBytes(dst, r.Value)
	dst = wire.AppendBytes(dst, r.AuthPub)
	dst = wire.AppendBytes(dst, r.Sig)
	dst = wire.AppendU64(dst, r.Epoch)
	return dst
}

// DecodeWireRecord decodes a record written by AppendWire.
func DecodeWireRecord(d *wire.Decoder) (Record, error) {
	var r Record
	if err := d.Fixed(r.Key[:]); err != nil {
		return r, err
	}
	var err error
	if r.Version, err = d.U64(); err != nil {
		return r, err
	}
	if r.Value, err = d.Bytes(); err != nil {
		return r, err
	}
	var raw []byte
	if raw, err = d.Bytes(); err != nil {
		return r, err
	}
	r.AuthPub = sig.PublicKey(raw)
	if r.Sig, err = d.Bytes(); err != nil {
		return r, err
	}
	if r.Epoch, err = d.U64(); err != nil {
		return r, err
	}
	return r, nil
}

// RegisterWireCodecs registers every DHT message with the wire codec
// registry. Idempotent; core.RegisterWireTypes calls it alongside the gob
// registrations that remain the compatibility fallback.
func RegisterWireCodecs() {
	wire.Register(tagPutMsg, "dht.PutMsg", PutMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(PutMsg)
			dst = m.Rec.AppendWire(dst)
			dst = wire.AppendBool(dst, m.NoReplicate)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m PutMsg
			var err error
			if m.Rec, err = DecodeWireRecord(d); err != nil {
				return nil, err
			}
			if m.NoReplicate, err = d.Bool(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagGetMsg, "dht.GetMsg", GetMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(GetMsg)
			return wire.AppendRaw(dst, m.Key[:]), nil
		},
		func(d *wire.Decoder) (any, error) {
			var m GetMsg
			if err := d.Fixed(m.Key[:]); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagGetResp, "dht.GetResp", GetResp{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(GetResp)
			dst = m.Rec.AppendWire(dst)
			dst = wire.AppendBool(dst, m.Found)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m GetResp
			var err error
			if m.Rec, err = DecodeWireRecord(d); err != nil {
				return nil, err
			}
			if m.Found, err = d.Bool(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagFindMsg, "dht.FindMsg", FindMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(FindMsg)
			return wire.AppendRaw(dst, m.Key[:]), nil
		},
		func(d *wire.Decoder) (any, error) {
			var m FindMsg
			if err := d.Fixed(m.Key[:]); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagFindResp, "dht.FindResp", FindResp{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(FindResp)
			dst = wire.AppendBool(dst, m.Found)
			dst = wire.AppendString(dst, string(m.Addr))
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m FindResp
			var err error
			if m.Found, err = d.Bool(); err != nil {
				return nil, err
			}
			var s string
			if s, err = d.String(); err != nil {
				return nil, err
			}
			m.Addr = bus.Address(s)
			return m, nil
		})
	wire.Register(tagSubMsg, "dht.SubMsg", SubMsg{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(SubMsg)
			dst = wire.AppendRaw(dst, m.Key[:])
			dst = wire.AppendString(dst, string(m.Watcher))
			dst = wire.AppendBool(dst, m.Unsub)
			dst = wire.AppendBool(dst, m.NoReplicate)
			return dst, nil
		},
		func(d *wire.Decoder) (any, error) {
			var m SubMsg
			if err := d.Fixed(m.Key[:]); err != nil {
				return nil, err
			}
			s, err := d.String()
			if err != nil {
				return nil, err
			}
			m.Watcher = bus.Address(s)
			if m.Unsub, err = d.Bool(); err != nil {
				return nil, err
			}
			if m.NoReplicate, err = d.Bool(); err != nil {
				return nil, err
			}
			return m, nil
		})
	wire.Register(tagNotify, "dht.Notify", Notify{},
		func(dst []byte, v any) ([]byte, error) {
			m := v.(Notify)
			return m.Rec.AppendWire(dst), nil
		},
		func(d *wire.Decoder) (any, error) {
			rec, err := DecodeWireRecord(d)
			if err != nil {
				return nil, err
			}
			return Notify{Rec: rec}, nil
		})
	wire.Register(tagAck, "dht.Ack", Ack{},
		func(dst []byte, v any) ([]byte, error) { return dst, nil },
		func(d *wire.Decoder) (any, error) { return Ack{}, nil })
	registerReplicaWireCodecs()
}
