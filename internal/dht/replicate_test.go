package dht

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"whopay/internal/bus"
	"whopay/internal/dht/replica"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// replicatedFixture builds a quorum-replicated cluster. Sweeping is manual
// (SweepDisabled) unless sweepEvery is positive, so tests converge
// deterministically via SweepAll. persist makes nodes journal so Kill can
// be followed by Restart.
func replicatedFixture(t testing.TB, nodes int, cfg replica.Config, persist bool, sweepEvery time.Duration) (*fixture, *Client) {
	t.Helper()
	net := bus.NewMemory()
	scheme := sig.NewNull(400)
	suite := sig.Suite{Scheme: scheme}
	broker, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	if sweepEvery <= 0 {
		sweepEvery = replica.SweepDisabled
	}
	cfg.SweepInterval = sweepEvery
	ccfg := ClusterConfig{
		Network:     net,
		Scheme:      scheme,
		Nodes:       nodes,
		Trusted:     []sig.PublicKey{broker.Public},
		Replication: &cfg,
	}
	if persist {
		ccfg.Persistence = &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncAlways}
	}
	cluster, err := NewClusterWithConfig(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ep, err := net.Listen("client", func(bus.Address, any) (any, error) { return Ack{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ep, cluster.Addrs(), OneHop)
	if err != nil {
		t.Fatal(err)
	}
	client.WithReplication(cfg)
	return &fixture{net: net, cluster: cluster, suite: suite, broker: broker}, client
}

// nodeFor maps a ring address back to the cluster node serving it.
func (f *fixture) nodeFor(t testing.TB, addr bus.Address) (*Node, int) {
	t.Helper()
	for i, n := range f.cluster.nodes {
		if n.addr == addr {
			return n, i
		}
	}
	t.Fatalf("no node at %s", addr)
	return nil, 0
}

func TestQuorumPutGetRoundTrip(t *testing.T) {
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 2}, false, 0)
	kp, rec := f.ownedRecord(t, 1, "binding-v1")
	if err := c.Put(rec); err != nil {
		t.Fatalf("quorum put: %v", err)
	}
	got, found, err := c.Get(rec.Key)
	if err != nil || !found {
		t.Fatalf("get = %v, %v", found, err)
	}
	if got.Version != 1 || string(got.Value) != "binding-v1" {
		t.Fatalf("got %d %q", got.Version, got.Value)
	}
	// The coordinator fans synchronously: every replica has the record
	// before the ack, so the cluster is converged immediately.
	if d := f.cluster.Divergence(); d != 0 {
		t.Fatalf("divergence after quorum put = %d", d)
	}
	_ = kp
}

func TestQuorumPutSurvivesOneNodeDown(t *testing.T) {
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 2}, false, 0)
	if err := f.cluster.Kill(0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		_, rec := f.ownedRecord(t, 1, fmt.Sprintf("v-%d", i))
		if err := c.Put(rec); err != nil {
			t.Fatalf("put %d with one node down: %v", i, err)
		}
		c.InvalidateLease(rec.Key) // force the read back to the quorum path
		got, found, err := c.Get(rec.Key)
		if err != nil || !found || got.Version != 1 {
			t.Fatalf("get %d = %v %v %v", i, got.Version, found, err)
		}
	}
}

func TestQuorumPutFailsBelowW(t *testing.T) {
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 2}, false, 0)
	_ = f.cluster.Kill(0)
	_ = f.cluster.Kill(1)
	_, rec := f.ownedRecord(t, 1, "doomed")
	err := c.Put(rec)
	if !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("put with 2 of 3 nodes down: %v, want ErrQuorumFailed", err)
	}
	// The read quorum is gone too.
	_, _, err = c.quorumGet(rec.Key)
	if !errors.Is(err, ErrQuorumFailed) {
		t.Fatalf("quorum read with 2 of 3 nodes down: %v, want ErrQuorumFailed", err)
	}
}

// TestQuorumReadRepairBackfills writes a newer version to only a write
// quorum of replicas, reads, and expects the read to both return the newest
// version and asynchronously back-fill the replica that missed it.
func TestQuorumReadRepairBackfills(t *testing.T) {
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 3}, false, 0)
	kp, rec1 := f.ownedRecord(t, 1, "v1")
	if err := c.Put(rec1); err != nil {
		t.Fatal(err)
	}
	rec2, err := SignRecord(f.suite, kp, rec1.Key, 2, []byte("v2"))
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a write that reached only members 1 and 2 (a W quorum that
	// excluded the primary).
	members := c.responsible(rec1.Key)[:3]
	for _, m := range members[1:] {
		if _, err := c.caller.Call(m.addr, PutMsg{Rec: rec2, NoReplicate: true}); err != nil {
			t.Fatal(err)
		}
	}
	stale, _ := f.nodeFor(t, members[0].addr)

	got, found, err := c.quorumGet(rec1.Key)
	if err != nil || !found {
		t.Fatalf("quorum get = %v, %v", found, err)
	}
	if got.Version != 2 {
		t.Fatalf("quorum read returned version %d, want 2 (stale quorum read)", got.Version)
	}
	// Read-repair is asynchronous; poll for the back-fill.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if r, ok := stale.store.Get(rec1.Key); ok && r.Version == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stale replica never repaired")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, _, _, repaired := c.LeaseStats(); repaired == 0 {
		t.Fatal("read-repair not counted")
	}
}

func TestLeaseCacheServesRepeatedReads(t *testing.T) {
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 2, LeaseTTL: time.Second}, false, 0)
	_, rec := f.ownedRecord(t, 1, "hot")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, found, err := c.Get(rec.Key); err != nil || !found {
			t.Fatalf("get %d = %v, %v", i, found, err)
		}
	}
	hits, _, stale, _ := c.LeaseStats()
	if hits < 10 {
		t.Fatalf("lease hits = %d, want ≥ 10 (writer's own put seeds the cache)", hits)
	}
	if stale != 0 {
		t.Fatalf("stale reads = %d, want 0", stale)
	}
}

// TestSubReplicationSurvivesPrimaryFailover is the regression for the
// subscription-loss-on-failover gap: a watcher registered at the primary
// must still be notified when the primary is down and a surviving replica
// coordinates the next write.
func TestSubReplicationSurvivesPrimaryFailover(t *testing.T) {
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 2}, false, 0)
	kp, rec := f.ownedRecord(t, 1, "watched")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var seen []uint64
	_, err := f.net.Listen("watcher", func(_ bus.Address, msg any) (any, error) {
		if nt, ok := msg.(Notify); ok {
			mu.Lock()
			seen = append(seen, nt.Rec.Version)
			mu.Unlock()
		}
		return Ack{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(rec.Key, "watcher"); err != nil {
		t.Fatal(err)
	}

	// Kill the primary — the node the registration was sent to.
	primary := c.responsible(rec.Key)[0].addr
	_, idx := f.nodeFor(t, primary)
	if err := f.cluster.Kill(idx); err != nil {
		t.Fatal(err)
	}

	rec2, err := SignRecord(f.suite, kp, rec.Key, 2, []byte("rebound"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(rec2); err != nil {
		t.Fatalf("put after primary kill: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	for _, v := range seen {
		if v == 2 {
			return
		}
	}
	t.Fatalf("watcher missed the post-failover write; saw versions %v", seen)
}

// TestAntiEntropyConvergesRestartedNode kills a replica, writes past it,
// restarts it from its journal, and expects one sweep round to close the
// gap — records and watcher registrations both.
func TestAntiEntropyConvergesRestartedNode(t *testing.T) {
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 2}, true, 0)
	kp, rec := f.ownedRecord(t, 1, "v1")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	down, idx := f.nodeFor(t, c.responsible(rec.Key)[0].addr)
	if err := f.cluster.Kill(idx); err != nil {
		t.Fatal(err)
	}
	for v := uint64(2); v <= 4; v++ {
		r, err := SignRecord(f.suite, kp, rec.Key, v, []byte(fmt.Sprintf("v%d", v)))
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Put(r); err != nil {
			t.Fatalf("put v%d: %v", v, err)
		}
	}
	// A watcher registered while the primary is down lands on the
	// survivors only; the sweep must merge it into the restarted node.
	if _, err := f.net.Listen("late-watcher", func(bus.Address, any) (any, error) { return Ack{}, nil }); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe(rec.Key, "late-watcher"); err != nil {
		t.Fatal(err)
	}

	if err := f.cluster.Restart(idx); err != nil {
		t.Fatal(err)
	}
	restarted := f.cluster.nodes[idx]
	if r, ok := restarted.store.Get(rec.Key); !ok || r.Version != 1 {
		t.Fatalf("restarted node recovered version %d, want its pre-crash 1", r.Version)
	}
	if !f.cluster.WaitConverged(5 * time.Second) {
		t.Fatalf("cluster did not converge; divergence = %d", f.cluster.Divergence())
	}
	if r, ok := restarted.store.Get(rec.Key); !ok || r.Version != 4 {
		t.Fatalf("restarted node at version %d after sweep, want 4", r.Version)
	}
	var hasWatcher bool
	restarted.subs.View(rec.Key, func(set map[bus.Address]bool, _ bool) {
		hasWatcher = set["late-watcher"]
	})
	if !hasWatcher {
		t.Fatal("sweep did not merge the watcher registered during downtime")
	}
	if down.sweepRepairs.Load()+restarted.sweepRepairs.Load() == 0 &&
		f.cluster.nodes[(idx+1)%3].sweepRepairs.Load() == 0 &&
		f.cluster.nodes[(idx+2)%3].sweepRepairs.Load() == 0 {
		t.Fatal("no sweep repair counted anywhere")
	}
	// A second sweep finds nothing: digests match in one message pair.
	if div := f.cluster.SweepAll(); div != 0 {
		t.Fatalf("second sweep still found %d divergent entries", div)
	}
}

// chaosSeedDHT mirrors the core chaos suite's seed discipline: fixed
// default seeds, overridable with WHOPAY_CHAOS_SEED for reproduction, and
// subtests fan out to seeds derived from the env seed and their name.
func chaosSeedDHT(t *testing.T, name string, def int64) int64 {
	if s := os.Getenv("WHOPAY_CHAOS_SEED"); s != "" {
		env, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad WHOPAY_CHAOS_SEED %q: %v", s, err)
		}
		if name == "env" {
			return env
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s", env, name)
		return int64(h.Sum64())
	}
	return def
}

// TestChaosNodeKillQuorumConsistency is the dht-node-kill chaos property:
// writers storm the cluster while nodes are crash-stopped and recovered,
// and a quorum read must never return a version older than the last acked
// quorum write to the same key — the no-stale-read overlap guarantee the
// paper's real-time double-spend detection rests on.
func TestChaosNodeKillQuorumConsistency(t *testing.T) {
	for _, sub := range []struct {
		name string
		seed int64
	}{{"env", 0xD47}, {"alt", 0xC0117}} {
		t.Run(sub.name, func(t *testing.T) {
			runChaosNodeKill(t, chaosSeedDHT(t, sub.name, sub.seed))
		})
	}
}

func runChaosNodeKill(t *testing.T, seed int64) {
	const (
		writers  = 4
		versions = 40
		kills    = 4
	)
	f, c := replicatedFixture(t, 3, replica.Config{N: 3, W: 2, R: 2, LeaseTTL: 5 * time.Millisecond}, true, 10*time.Millisecond)
	fail := func(format string, args ...any) {
		t.Helper()
		t.Errorf("[chaos seed %d] "+format+
			" — reproduce with: WHOPAY_CHAOS_SEED=%d go test -run 'TestChaosNodeKillQuorumConsistency/env' ./internal/dht/",
			append(append([]any{seed}, args...), seed)...)
	}

	type slot struct {
		kp    sig.KeyPair
		key   Key
		acked uint64
	}
	slots := make([]*slot, writers)
	for i := range slots {
		kp, rec := f.ownedRecord(t, 0, "seed")
		slots[i] = &slot{kp: kp, key: rec.Key}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	var failures []string
	writerFail := func(format string, args ...any) {
		mu.Lock()
		failures = append(failures, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	stop := make(chan struct{})
	for wi, s := range slots {
		wg.Add(1)
		go func(wi int, s *slot) {
			defer wg.Done()
			for v := uint64(1); v <= versions; v++ {
				rec, err := SignRecord(f.suite, s.kp, s.key, v, []byte(fmt.Sprintf("w%d-v%d", wi, v)))
				if err != nil {
					writerFail("sign: %v", err)
					return
				}
				// Retry through kill windows; quorum failures and
				// transport errors are the storm's weather, not a bug.
				for attempt := 0; ; attempt++ {
					if err = c.Put(rec); err == nil {
						s.acked = v
						break
					}
					if attempt > 200 {
						writerFail("writer %d: version %d never committed: %v", wi, v, err)
						return
					}
					time.Sleep(time.Millisecond)
				}
				got, found, err := c.Get(s.key)
				if err != nil {
					continue // a read quorum may be out during a kill; the invariant is about answers
				}
				if !found {
					writerFail("writer %d: read after acked v%d found nothing", wi, v)
					return
				}
				if got.Version < s.acked {
					writerFail("STALE QUORUM READ: writer %d read v%d after acking v%d", wi, got.Version, s.acked)
					return
				}
			}
		}(wi, s)
	}

	// The killer: crash-stop one node at a time, let the storm run on the
	// surviving majority, recover, repeat.
	rng := rand.New(rand.NewSource(seed))
	done := make(chan struct{})
	go func() {
		defer close(done)
		for k := 0; k < kills; k++ {
			select {
			case <-stop:
				return
			default:
			}
			idx := rng.Intn(3)
			if err := f.cluster.Kill(idx); err != nil {
				writerFail("kill %d: %v", idx, err)
				return
			}
			time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
			if err := f.cluster.Restart(idx); err != nil {
				writerFail("restart %d: %v", idx, err)
				return
			}
			time.Sleep(time.Duration(5+rng.Intn(15)) * time.Millisecond)
		}
	}()
	wg.Wait()
	close(stop)
	<-done

	mu.Lock()
	for _, f := range failures {
		fail("%s", f)
	}
	mu.Unlock()
	if t.Failed() {
		return
	}

	if !f.cluster.WaitConverged(10 * time.Second) {
		fail("anti-entropy never reached digest parity; divergence = %d", f.cluster.Divergence())
	}
	for wi, s := range slots {
		c.InvalidateLease(s.key)
		got, found, err := c.Get(s.key)
		if err != nil || !found {
			fail("final read writer %d: %v, %v", wi, found, err)
			continue
		}
		if got.Version < s.acked {
			fail("final read writer %d: v%d < acked v%d", wi, got.Version, s.acked)
		}
	}
	if _, _, stale, _ := c.LeaseStats(); stale != 0 {
		fail("%d stale quorum reads observed by the lease watermark", stale)
	}
}

// TestUnreplicatedPathUnchanged pins the compatibility contract: a nil
// replication config keeps the legacy single-copy client behavior, error
// shapes included.
func TestUnreplicatedPathUnchanged(t *testing.T) {
	f, c := newFixture(t, 3, 2, OneHop)
	if c.rep != nil || c.leases != nil {
		t.Fatal("legacy client grew replication state")
	}
	_, rec := f.ownedRecord(t, 1, "legacy")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.Get(rec.Key)
	if err != nil || !found || got.Version != 1 {
		t.Fatalf("legacy get = %v %v %v", got.Version, found, err)
	}
	if h, m, s, r := c.LeaseStats(); h+m+s+r != 0 {
		t.Fatal("legacy client reported lease stats")
	}
}
