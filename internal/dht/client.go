package dht

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"whopay/internal/bus"
	"whopay/internal/dht/replica"
)

// Mode selects the client's routing strategy.
type Mode int

const (
	// OneHop routes directly to the responsible node from a local
	// membership snapshot (Dynamo-style; appropriate for the managed
	// trusted infrastructure the paper assumes, and what the load
	// simulator uses).
	OneHop Mode = iota
	// Iterative performs Chord iterative lookups through finger tables
	// (O(log n) hops).
	Iterative
)

// maxHops bounds iterative lookups; 2·256 covers any 256-bit ring walk with
// sane fingers.
const maxHops = 64

// Client reads and writes the DHT through an existing bus endpoint (the
// entity's own endpoint, so DHT traffic is attributed to the entity).
type Client struct {
	ep     bus.Endpoint
	caller bus.Caller // ep, or a RetryCaller around it (WithRetry)
	ring   []nodeRef
	mode   Mode

	// Replication (DESIGN.md §14): nil rep keeps the legacy single-read
	// single-write paths and error shapes exact.
	rep      *replica.Config
	leases   *replica.LeaseCache
	repaired atomic.Uint64 // stale replicas back-filled by read-repair
}

// NewClient builds a client over the given node membership. Node IDs are
// derived from addresses, so no network round-trip is needed.
func NewClient(ep bus.Endpoint, nodes []bus.Address, mode Mode) (*Client, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	ring := make([]nodeRef, 0, len(nodes))
	for _, addr := range nodes {
		ring = append(ring, nodeRef{id: keyForAddr(addr), addr: addr})
	}
	sort.Slice(ring, func(i, j int) bool { return ring[i].id.Less(ring[j].id) })
	return &Client{ep: ep, caller: ep, ring: ring, mode: mode}, nil
}

// WithRetry wraps the client's per-node calls in the given retry policy
// (capped exponential backoff on transient transport failures; protocol
// rejections are never retried). Replica fallback still applies on top:
// retries are per node, fallback moves to the next one. Call before
// concurrent use; returns the client for chaining.
func (c *Client) WithRetry(policy bus.RetryPolicy) *Client {
	c.caller = bus.NewRetryCaller(c.ep, policy)
	return c
}

// primaryIndex returns the ring index of the node responsible for key; the
// replica chain follows it around the ring.
func (c *Client) primaryIndex(key Key) int {
	i := sort.Search(len(c.ring), func(i int) bool { return !c.ring[i].id.Less(key) })
	return i % len(c.ring)
}

// responsible returns the replica chain for key, primary first (tests).
func (c *Client) responsible(key Key) []nodeRef {
	i := c.primaryIndex(key)
	out := make([]nodeRef, 0, len(c.ring))
	for r := 0; r < len(c.ring); r++ {
		out = append(out, c.ring[(i+r)%len(c.ring)])
	}
	return out
}

// locate finds the address to contact for key under the configured mode.
func (c *Client) locate(key Key) (bus.Address, error) {
	if c.mode == OneHop {
		return c.ring[c.primaryIndex(key)].addr, nil
	}
	// Iterative Chord: start anywhere (spread load by key), follow
	// FindResp hops.
	start := c.ring[int(key[0])%len(c.ring)].addr
	cur := start
	for hop := 0; hop < maxHops; hop++ {
		resp, err := c.caller.Call(cur, FindMsg{Key: key})
		if err != nil {
			return "", fmt.Errorf("%w: hop via %s: %v", ErrLookupFailed, cur, err)
		}
		fr, ok := resp.(FindResp)
		if !ok {
			return "", fmt.Errorf("%w: unexpected response %T", ErrLookupFailed, resp)
		}
		if fr.Found {
			return fr.Addr, nil
		}
		cur = fr.Addr
	}
	return "", fmt.Errorf("%w: hop limit exceeded", ErrLookupFailed)
}

// callWithFallback tries the responsible replica chain in order until one
// answers, tolerating individual node outages.
func (c *Client) callWithFallback(key Key, msg any) (any, error) {
	var addr bus.Address
	var err error
	if c.mode == Iterative {
		addr, err = c.locate(key)
		if err == nil {
			var resp any
			resp, err = c.caller.Call(addr, msg)
			if err == nil {
				return resp, nil
			}
		}
	}
	var lastErr error = err
	primary := c.primaryIndex(key)
	for r := 0; r < len(c.ring); r++ {
		resp, err := c.caller.Call(c.ring[(primary+r)%len(c.ring)].addr, msg)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		var remote *bus.RemoteError
		if errors.As(err, &remote) {
			// The node answered and rejected us: an application
			// error (ACL, stale version) that fallback cannot fix.
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w: all replicas failed: %v", ErrLookupFailed, lastErr)
}

// Put writes a signed record. With replication configured, the write goes
// through the quorum path: the coordinator acks only after W replicas
// committed, and this client's lease cache adopts the written record.
func (c *Client) Put(rec Record) error {
	if c.rep == nil {
		_, err := c.callWithFallback(rec.Key, PutMsg{Rec: rec})
		return err
	}
	_, err := c.callWithFallback(rec.Key, QuorumPutMsg{Rec: rec})
	if err != nil {
		c.leases.Invalidate([32]byte(rec.Key))
		return err
	}
	c.leases.Put([32]byte(rec.Key), rec, rec.Version, 0)
	return nil
}

// Get reads the record at key. With replication configured this is a
// quorum read — R replicas consulted in parallel, highest version wins,
// stale replicas back-filled asynchronously — fronted by the TTL lease
// cache that serves repeated reads of a hot binding locally.
func (c *Client) Get(key Key) (Record, bool, error) {
	if c.rep == nil {
		resp, err := c.callWithFallback(key, GetMsg{Key: key})
		if err != nil {
			return Record{}, false, err
		}
		gr, ok := resp.(GetResp)
		if !ok {
			return Record{}, false, fmt.Errorf("dht: unexpected response %T", resp)
		}
		return gr.Rec, gr.Found, nil
	}
	if v, ok := c.leases.Get([32]byte(key)); ok {
		return v.(Record), true, nil
	}
	return c.quorumGet(key)
}

// Subscribe registers watcher for notifications on writes to key.
func (c *Client) Subscribe(key Key, watcher bus.Address) error {
	_, err := c.callWithFallback(key, SubMsg{Key: key, Watcher: watcher})
	return err
}

// Unsubscribe removes watcher's registration on key.
func (c *Client) Unsubscribe(key Key, watcher bus.Address) error {
	_, err := c.callWithFallback(key, SubMsg{Key: key, Watcher: watcher, Unsub: true})
	return err
}
