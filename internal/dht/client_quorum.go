package dht

import (
	"fmt"
	"sync"
	"time"

	"whopay/internal/bus"
	"whopay/internal/dht/replica"
)

// Client-side quorum reads and the hot-coin lease cache (DESIGN.md §14).

// WithReplication turns on the client's quorum read/write paths and lease
// cache. The config is normalized against the known membership, so W+R > N
// holds even if the caller hand-tuned the numbers. Call before concurrent
// use; returns the client for chaining.
func (c *Client) WithReplication(cfg replica.Config) *Client {
	norm := cfg.WithDefaults(len(c.ring))
	c.rep = &norm
	c.leases = replica.NewLeaseCache(norm.LeaseTTL, norm.LeaseCap)
	return c
}

// probe is one replica's answer during a quorum read.
type probe struct {
	addr    bus.Address
	found   bool
	version uint64
	rec     *Record // non-nil when the probe carried the full record
	grantMs uint32
	err     error
}

// quorumGet reads key from R replicas in parallel: the first replica is
// asked for the full record (with a lease grant), the rest for version
// digests. The highest version wins; replicas that answered stale or empty
// are back-filled asynchronously with the winner (read-repair). Fails with
// ErrQuorumFailed when fewer than R replicas answer.
func (c *Client) quorumGet(key Key) (Record, bool, error) {
	members := c.responsible(key)
	if len(members) > c.rep.N {
		members = members[:c.rep.N]
	}
	probes := make([]probe, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, addr bus.Address) {
			defer wg.Done()
			probes[i] = c.probeReplica(addr, key, i == 0)
		}(i, m.addr)
	}
	wg.Wait()

	answered := 0
	for _, p := range probes {
		if p.err == nil {
			answered++
		}
	}
	if answered < c.rep.R {
		return Record{}, false, fmt.Errorf("%w: %d of %d replicas answered (need %d)",
			ErrQuorumFailed, answered, len(members), c.rep.R)
	}

	// Winner: the highest version among answers. Epochs are node-local
	// restart metadata and never compared across nodes.
	winner := -1
	for i, p := range probes {
		if p.err != nil || !p.found {
			continue
		}
		if winner < 0 || p.version > probes[winner].version {
			winner = i
		}
	}
	if winner < 0 {
		return Record{}, false, nil // quorum of confirmed not-founds
	}
	win := probes[winner]
	if win.rec == nil {
		// The winning version came from a digest: fetch the record.
		full := c.probeReplica(win.addr, key, true)
		if full.err != nil || !full.found {
			return Record{}, false, fmt.Errorf("%w: winning replica %s lost mid-read",
				ErrQuorumFailed, win.addr)
		}
		win = full
	}
	rec := *win.rec
	c.repairStale(key, rec, probes)
	grant := time.Duration(win.grantMs) * time.Millisecond
	c.leases.Put([32]byte(key), rec, rec.Version, grant)
	return rec, true, nil
}

// probeReplica asks one replica about key: the full record (lease read)
// or just its version digest.
func (c *Client) probeReplica(addr bus.Address, key Key, full bool) probe {
	p := probe{addr: addr}
	if full {
		resp, err := c.caller.Call(addr, LeaseGetMsg{Key: key})
		if err != nil {
			p.err = err
			return p
		}
		lr, ok := resp.(LeaseResp)
		if !ok {
			p.err = fmt.Errorf("dht: unexpected response %T", resp)
			return p
		}
		if lr.Found {
			rec := lr.Rec
			p.found, p.version, p.rec = true, rec.Version, &rec
		}
		p.grantMs = lr.GrantMs
		return p
	}
	resp, err := c.caller.Call(addr, DigestMsg{Key: key})
	if err != nil {
		p.err = err
		return p
	}
	dr, ok := resp.(DigestResp)
	if !ok {
		p.err = fmt.Errorf("dht: unexpected response %T", resp)
		return p
	}
	p.found, p.version = dr.Found, dr.Version
	return p
}

// repairStale back-fills replicas that answered behind the winner,
// asynchronously — the read already has its answer; repair is about the
// next one. The record is self-certifying (signed), so the replica applies
// the same ACL and version checks as any write.
func (c *Client) repairStale(key Key, winner Record, probes []probe) {
	for _, p := range probes {
		if p.err != nil || (p.found && p.version >= winner.Version) {
			continue
		}
		addr := p.addr
		c.repaired.Add(1)
		go func() {
			_, _ = c.caller.Call(addr, PutMsg{Rec: winner, NoReplicate: true})
		}()
	}
}

// ObserveNotify feeds a watch notification into the lease cache: the
// freshest possible view of the binding, delivered by the node itself, so
// the cache entry is refreshed (or created) rather than waiting out its
// TTL with stale data. No-op without replication.
func (c *Client) ObserveNotify(rec Record) {
	if c.leases == nil {
		return
	}
	c.leases.Put([32]byte(rec.Key), rec, rec.Version, 0)
}

// InvalidateLease drops key's cached record (e.g. after a failed write
// left its state uncertain). No-op without replication.
func (c *Client) InvalidateLease(key Key) {
	if c.leases != nil {
		c.leases.Invalidate([32]byte(key))
	}
}

// LeaseStats reports the lease cache's cumulative hits and misses, the
// number of backwards-in-time records it refused (stale quorum reads
// observed — must stay zero while a read quorum survives), and the stale
// replicas read-repair back-filled. Zeros without replication.
func (c *Client) LeaseStats() (hits, misses, stale, repaired uint64) {
	if c.leases == nil {
		return 0, 0, 0, 0
	}
	hits, misses, stale = c.leases.Stats()
	return hits, misses, stale, c.repaired.Load()
}
