package dht

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"whopay/internal/bus"
	"whopay/internal/sig"
	"whopay/internal/wal"
)

// persistedFixture builds a durable cluster with the broker as trusted
// writer.
func persistedFixture(t *testing.T, nodes, replicas int) (*fixture, *Client) {
	t.Helper()
	net := bus.NewMemory()
	scheme := sig.NewNull(400)
	suite := sig.Suite{Scheme: scheme}
	broker, err := suite.GenerateKey()
	if err != nil {
		t.Fatal(err)
	}
	cluster, err := NewClusterWithConfig(ClusterConfig{
		Network:     net,
		Scheme:      scheme,
		Nodes:       nodes,
		Replicas:    replicas,
		Trusted:     []sig.PublicKey{broker.Public},
		Persistence: &wal.Config{Dir: t.TempDir(), Policy: wal.FsyncAlways},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cluster.Close)
	ep, err := net.Listen("client", func(bus.Address, any) (any, error) { return Ack{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	client, err := NewClient(ep, cluster.Addrs(), OneHop)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{net: net, cluster: cluster, suite: suite, broker: broker}, client
}

// TestNodeRestartRejoins is the tentpole's DHT scenario: a crash-restarted
// node rejoins with its records and subscriptions intact and keeps serving.
func TestNodeRestartRejoins(t *testing.T) {
	f, c := persistedFixture(t, 4, 2)

	var mu sync.Mutex
	var notified []Record
	if _, err := f.net.Listen("watcher", func(_ bus.Address, msg any) (any, error) {
		if n, ok := msg.(Notify); ok {
			mu.Lock()
			notified = append(notified, n.Rec)
			mu.Unlock()
		}
		return Ack{}, nil
	}); err != nil {
		t.Fatal(err)
	}

	owners := make([]sig.KeyPair, 8)
	recs := make([]Record, 8)
	for i := range recs {
		owners[i], recs[i] = f.ownedRecord(t, 1, fmt.Sprintf("binding-%d", i))
		if err := c.Put(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Subscribe(recs[0].Key, "watcher"); err != nil {
		t.Fatal(err)
	}

	for i := range f.cluster.Nodes() {
		if err := f.cluster.Restart(i); err != nil {
			t.Fatalf("restarting node %d: %v", i, err)
		}
	}
	for i, node := range f.cluster.Nodes() {
		if got := node.Epoch(); got != 2 {
			t.Errorf("node %d epoch = %d after one restart, want 2", i, got)
		}
		if err := node.PersistenceErr(); err != nil {
			t.Errorf("node %d journaling: %v", i, err)
		}
	}

	for i := range recs {
		got, found, err := c.Get(recs[i].Key)
		if err != nil {
			t.Fatal(err)
		}
		if !found || !bytes.Equal(got.Value, recs[i].Value) {
			t.Fatalf("record %d lost in restart (found=%v)", i, found)
		}
	}

	// The subscription survived: a post-restart write still notifies.
	rec2, err := SignRecord(f.suite, owners[0], recs[0].Key, 2, []byte("binding-0-v2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(rec2); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	n := len(notified)
	mu.Unlock()
	if n != 1 {
		t.Errorf("watcher got %d notifications after restart, want 1", n)
	}
}

// TestEpochFencesPreCrashRace is the satellite regression test: a write that
// raced the crash cannot clobber the post-recovery binding. The broker (the
// only trusted writer, and the downtime-protocol authority) may refresh a
// record that predates the latest recovery at the same version; everything
// else at that version is refused, in both arrival orders.
func TestEpochFencesPreCrashRace(t *testing.T) {
	f, c := persistedFixture(t, 1, 1)
	owner, rec := f.ownedRecord(t, 5, "pre-crash")
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}

	if err := f.cluster.Restart(0); err != nil {
		t.Fatal(err)
	}

	// Arrival order one: the delayed pre-crash owner write lands before
	// the broker's refresh. Owners are not trusted writers, so it cannot
	// supersede the recovered record at the same version.
	stale, err := SignRecord(f.suite, owner, rec.Key, 5, []byte("pre-crash-race"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(stale); err == nil {
		t.Fatal("stale same-version owner write accepted after recovery")
	}
	got, _, err := c.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, []byte("pre-crash")) {
		t.Fatalf("recovered record clobbered: %q", got.Value)
	}

	// The broker re-asserts the authoritative binding at the same version:
	// accepted exactly once, because the stored record predates the
	// current epoch.
	refresh, err := SignRecord(f.suite, f.broker, rec.Key, 5, []byte("post-recovery"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(refresh); err != nil {
		t.Fatalf("trusted post-recovery refresh rejected: %v", err)
	}

	// Arrival order two: the pre-crash race arrives after the refresh. The
	// refreshed record carries the current epoch, so even a trusted
	// same-version write is now refused — the post-recovery binding wins.
	race, err := SignRecord(f.suite, f.broker, rec.Key, 5, []byte("pre-crash-race"))
	if err != nil {
		t.Fatal(err)
	}
	err = c.Put(race)
	if err == nil {
		t.Fatal("pre-crash race clobbered the post-recovery binding")
	}
	var remote *bus.RemoteError
	if !errors.As(err, &remote) {
		t.Fatalf("unexpected error kind: %v", err)
	}
	if err := c.Put(stale); err == nil {
		t.Fatal("stale owner write accepted after refresh")
	}
	got, _, err = c.Get(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Value, []byte("post-recovery")) {
		t.Fatalf("post-recovery binding clobbered: %q", got.Value)
	}

	// Ordinary progress is untouched: a higher version still lands.
	next, err := SignRecord(f.suite, owner, rec.Key, 6, []byte("v6"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(next); err != nil {
		t.Fatalf("higher-version write rejected: %v", err)
	}
}

// TestEpochFenceClosedWithinEpoch proves the refresh allowance only opens
// across a restart: within one epoch, equal-version conflicts are refused
// even for trusted writers.
func TestEpochFenceClosedWithinEpoch(t *testing.T) {
	f, c := persistedFixture(t, 1, 1)
	rec, err := SignRecord(f.suite, f.broker, KeyFor(f.broker.Public), 3, []byte("first"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(rec); err != nil {
		t.Fatal(err)
	}
	conflict, err := SignRecord(f.suite, f.broker, rec.Key, 3, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Put(conflict); err == nil {
		t.Fatal("same-epoch same-version conflict accepted")
	}
}

// TestEpochMonotonic checks the epoch advances on every recovery.
func TestEpochMonotonic(t *testing.T) {
	f, _ := persistedFixture(t, 1, 1)
	for want := uint64(2); want <= 4; want++ {
		if err := f.cluster.Restart(0); err != nil {
			t.Fatal(err)
		}
		if got := f.cluster.Nodes()[0].Epoch(); got != want {
			t.Fatalf("epoch = %d, want %d", got, want)
		}
	}
}
