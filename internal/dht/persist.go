package dht

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"sort"
	"time"

	"whopay/internal/bus"
	"whopay/internal/wal"
)

// Node durability (DESIGN.md §10). A persistent node journals every accepted
// record and subscription change before acking, and replays the journal on
// restart, so the public binding list — the substance of real-time
// double-spending detection — survives node crashes.
//
// Restart semantics are guarded by a monotonic node epoch, bumped (and
// force-synced) on every recovery. Stored records are stamped with the epoch
// that accepted them. A record carried over from before the latest crash
// (Epoch < current) may be refreshed at the same version by a trusted writer
// — the broker re-asserting the authoritative binding after the outage — and
// once refreshed it sits at the current epoch, so a delayed pre-crash racing
// write can never clobber the post-recovery binding: equal-version conflicts
// within one epoch are refused exactly as before.

// Journal tables.
const (
	tblEpoch = "epoch"
	tblRec   = "rec"
	tblSub   = "sub"
)

var epochKey = []byte("epoch")

func gobEnc(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDec(b []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(b)).Decode(v)
}

// journal appends one record batch, remembering the first failure.
func (n *Node) journal(muts ...wal.Mutation) {
	if n.walLog == nil {
		return
	}
	if err := n.walLog.Append(wal.EncodeBatch(muts)); err != nil {
		n.walFail(err)
	}
}

func (n *Node) walFail(err error) {
	if err == nil {
		return
	}
	n.walMu.Lock()
	if n.walErr == nil {
		n.walErr = err
	}
	n.walMu.Unlock()
}

// PersistenceErr returns the first durability failure since startup, or nil.
func (n *Node) PersistenceErr() error {
	n.walMu.Lock()
	defer n.walMu.Unlock()
	return n.walErr
}

// Epoch returns the node's current epoch (0 for in-memory nodes).
func (n *Node) Epoch() uint64 { return n.epoch }

// journalRecordLocked journals an accepted record; the caller holds the
// record's shard write lock, so journal order matches acceptance order.
func (n *Node) journalRecordLocked(rec Record) {
	if n.walLog == nil {
		return
	}
	val, err := gobEnc(rec)
	if err != nil {
		n.walFail(err)
		return
	}
	n.journal(wal.Set(tblRec, rec.Key[:], val))
}

// journalSubsLocked journals a key's full watcher set (nil deletes); the
// caller holds the subscription shard's write lock.
func (n *Node) journalSubsLocked(key Key, ws map[bus.Address]bool) {
	if n.walLog == nil {
		return
	}
	if len(ws) == 0 {
		n.journal(wal.Delete(tblSub, key[:]))
		return
	}
	watchers := make([]string, 0, len(ws))
	for w := range ws {
		watchers = append(watchers, string(w))
	}
	sort.Strings(watchers)
	val, err := gobEnc(watchers)
	if err != nil {
		n.walFail(err)
		return
	}
	n.journal(wal.Set(tblSub, key[:], val))
}

// recoverState replays the node's journal and advances the epoch. Runs
// before the node starts serving.
func (n *Node) recoverState() error {
	var lastEpoch uint64
	err := n.walLog.Replay(func(payload []byte) error {
		muts, err := wal.DecodeBatch(payload)
		if err != nil {
			return err
		}
		for _, m := range muts {
			switch m.Table {
			case tblEpoch:
				lastEpoch = binary.BigEndian.Uint64(m.Val)
			case tblRec:
				var rec Record
				if err := gobDec(m.Val, &rec); err != nil {
					return err
				}
				n.store.Set(rec.Key, rec)
			case tblSub:
				var key Key
				copy(key[:], m.Key)
				if m.Op == wal.OpDelete {
					n.subs.Delete(key)
					continue
				}
				var watchers []string
				if err := gobDec(m.Val, &watchers); err != nil {
					return err
				}
				ws := make(map[bus.Address]bool, len(watchers))
				for _, w := range watchers {
					ws[bus.Address(w)] = true
				}
				n.subs.Set(key, ws)
			default:
				return fmt.Errorf("dht: journal has unknown table %q", m.Table)
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	// The epoch bump is the restart fence: force-synced so that even under
	// FsyncNever a recovered node never serves in a stale epoch.
	n.epoch = lastEpoch + 1
	var val [8]byte
	binary.BigEndian.PutUint64(val[:], n.epoch)
	n.journal(wal.Set(tblEpoch, epochKey, val[:]))
	if err := n.walLog.Sync(); err != nil {
		return err
	}
	n.lastForceSync.Store(time.Now().UnixNano())
	return n.PersistenceErr()
}

// healthCheck reports the node's durability health for /healthz: the
// retained journal error (unhealthy) or the epoch and the age of the
// epoch-fence force-sync cut at recovery (healthy detail).
func (n *Node) healthCheck() (string, error) {
	if err := n.PersistenceErr(); err != nil {
		return "", err
	}
	age := time.Duration(0)
	if t := n.lastForceSync.Load(); t != 0 {
		age = time.Since(time.Unix(0, t)).Round(time.Millisecond)
	}
	return fmt.Sprintf("epoch %d, force-synced %v ago", n.Epoch(), age), nil
}

// maybeSnapshot cuts a compaction snapshot when the journal has outgrown its
// threshold. Never called under a store shard lock.
func (n *Node) maybeSnapshot() {
	if n.walLog != nil && n.walLog.SnapshotDue() {
		n.walFail(n.snapshot())
	}
}

// snapshot writes the node's full state and truncates the journal to it.
func (n *Node) snapshot() error {
	return n.walLog.Snapshot(func(app func([]byte) error) error {
		emit := func(muts ...wal.Mutation) error { return app(wal.EncodeBatch(muts)) }
		var val [8]byte
		binary.BigEndian.PutUint64(val[:], n.epoch)
		if err := emit(wal.Set(tblEpoch, epochKey, val[:])); err != nil {
			return err
		}
		var failed error
		n.store.Range(func(_ Key, rec Record) bool {
			enc, err := gobEnc(rec)
			if err != nil {
				failed = err
				return false
			}
			failed = emit(wal.Set(tblRec, rec.Key[:], enc))
			return failed == nil
		})
		if failed != nil {
			return failed
		}
		for _, key := range n.subs.Keys() {
			var watchers []string
			n.subs.View(key, func(ws map[bus.Address]bool, _ bool) {
				for w := range ws {
					watchers = append(watchers, string(w))
				}
			})
			if len(watchers) == 0 {
				continue
			}
			sort.Strings(watchers)
			enc, err := gobEnc(watchers)
			if err != nil {
				return err
			}
			if err := emit(wal.Set(tblSub, key[:], enc)); err != nil {
				return err
			}
		}
		return failed
	})
}
