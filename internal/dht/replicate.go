package dht

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"whopay/internal/bus"
	"whopay/internal/dht/replica"
	"whopay/internal/store"
)

// Node-side replication (DESIGN.md §14): quorum writes, version digests for
// quorum reads, and the background anti-entropy sweep that converges
// replicas missed during downtime. All of it is dormant — byte-identical
// behavior and error shapes — until ClusterConfig.Replication is set.

// ErrQuorumFailed is returned when a quorum write (or read) cannot gather
// the configured number of replica acknowledgements.
var ErrQuorumFailed = errors.New("dht: quorum not reached")

func init() {
	// The code crosses tcpbus so errors.Is keeps working remotely, and so
	// the load harness can whitelist quorum failures during a node kill.
	bus.RegisterErrorCode("dht.quorum_failed", ErrQuorumFailed)
}

// Replication wire messages (tags 48–57, see wire.go).
type (
	// QuorumPutMsg writes a record through the quorum path: the receiving
	// node coordinates, fanning the record to the replica set and acking
	// only after W replicas (itself included) committed.
	QuorumPutMsg struct{ Rec Record }
	// QuorumAck answers a committed QuorumPutMsg.
	QuorumAck struct {
		Committed uint32 // replicas that acknowledged the write
		Required  uint32 // the configured write quorum W
	}
	// DigestMsg asks a replica for its version digest of one key — the
	// light half of a quorum read.
	DigestMsg struct{ Key Key }
	// DigestResp answers DigestMsg.
	DigestResp struct {
		Found   bool
		Version uint64
	}
	// SweepMsg opens an anti-entropy round: the sender's digest over the
	// key range the two nodes share. A matching digest ends the round in
	// this one message pair.
	SweepMsg struct {
		From  bus.Address
		Sum   [32]byte
		Count uint64
	}
	// SweepResp answers SweepMsg.
	SweepResp struct{ Match bool }
	// SweepKeysMsg is the reconciliation half of a mismatched sweep: the
	// sender's per-key versions and watcher sets for the shared range.
	SweepKeysMsg struct {
		From bus.Address
		Recs []KeyVer
		Subs []SubState
	}
	// SweepKeysResp answers SweepKeysMsg: full records the sender is
	// missing or behind on, keys the responder wants pushed, and the
	// responder's watcher sets (both sides merge to the union).
	SweepKeysResp struct {
		Newer []Record
		Want  []Key
		Subs  []SubState
	}
	// LeaseGetMsg reads a record with a lease grant attached — the full
	// half of a quorum read, and what feeds the client's lease cache.
	LeaseGetMsg struct{ Key Key }
	// LeaseResp answers LeaseGetMsg. GrantMs is how long the node lets
	// the reader serve this record locally (0: no lease).
	LeaseResp struct {
		Rec     Record
		Found   bool
		GrantMs uint32
	}
)

// KeyVer is one key's version — the unit of the sweep reconciliation.
type KeyVer struct {
	Key     Key
	Version uint64
}

// SubState is one key's watcher set, sorted.
type SubState struct {
	Key      Key
	Watchers []bus.Address
}

// handleQuorumPut coordinates a quorum write. The local accept runs first —
// a rejection (ACL, bad signature, stale version) errors exactly like the
// single-copy path — then the record fans to the rest of the replica set
// concurrently and the write acks only with W commits in hand.
func (n *Node) handleQuorumPut(m QuorumPutMsg) (any, error) {
	if n.rep == nil {
		// Replication not configured on this node: serve it as a plain
		// put so mixed deployments degrade instead of erroring.
		return n.handlePut(PutMsg{Rec: m.Rec})
	}
	accepted, rec, err := n.acceptRecord(m.Rec)
	if err != nil {
		return nil, err
	}
	acks := 0
	var others []bus.Address
	for _, r := range n.replicaSet(rec.Key) {
		if r.addr == n.addr {
			acks++ // the coordinator's own commit
		} else {
			others = append(others, r.addr)
		}
	}
	acks += n.fanOut(others, PutMsg{Rec: rec, NoReplicate: true})
	if acks < n.rep.W {
		n.quorumFails.Add(1)
		return nil, fmt.Errorf("%w: %d of %d replicas committed (need %d)",
			ErrQuorumFailed, acks, n.rep.N, n.rep.W)
	}
	n.quorumWrites.Add(1)
	if accepted {
		n.notifyWatchers(rec)
	}
	return QuorumAck{Committed: uint32(acks), Required: uint32(n.rep.W)}, nil
}

// otherReplicas lists the replica set for key minus this node.
func (n *Node) otherReplicas(key Key) []bus.Address {
	set := n.replicaSet(key)
	out := make([]bus.Address, 0, len(set))
	for _, r := range set {
		if r.addr != n.addr {
			out = append(out, r.addr)
		}
	}
	return out
}

// leaseGrantMs is the lease a node attaches to LeaseGetMsg reads.
func (n *Node) leaseGrantMs() uint32 {
	if n.rep == nil {
		return 0
	}
	return uint32(n.rep.LeaseTTL / time.Millisecond)
}

// --- Anti-entropy sweep ---------------------------------------------------

// startSweeper launches the background anti-entropy loop. No-op unless the
// node has a replication config with a positive sweep interval.
func (n *Node) startSweeper() {
	if n.rep == nil || n.rep.SweepInterval <= 0 {
		return
	}
	n.stopSweep = make(chan struct{})
	n.sweepWG.Add(1)
	go func() {
		defer n.sweepWG.Done()
		t := time.NewTicker(n.rep.SweepInterval)
		defer t.Stop()
		for {
			select {
			case <-n.stopSweep:
				return
			case <-t.C:
				n.SweepOnce()
			}
		}
	}()
}

// stopSweeper stops the background loop and waits it out.
func (n *Node) stopSweeper() {
	if n.stopSweep != nil {
		close(n.stopSweep)
		n.sweepWG.Wait()
		n.stopSweep = nil
	}
}

// SweepOnce runs one full anti-entropy round against every successor-list
// neighbor this node shares key ranges with, and returns how many divergent
// entries (records repaired, pushed, or unreachable neighbors) it found —
// the repair backlog. Exported so tests and convergence waits can sweep
// deterministically.
func (n *Node) SweepOnce() int {
	if n.rep == nil {
		return 0
	}
	div := 0
	for _, nb := range n.sweepNeighbors() {
		div += n.sweepNeighbor(nb)
	}
	n.sweepRounds.Add(1)
	prev := n.repairBacklog.Swap(int64(div))
	if div > 0 && int64(div) >= prev {
		n.backlogGrowth.Add(1)
	} else {
		n.backlogGrowth.Store(0)
	}
	n.maybeSnapshot()
	return div
}

// sweepNeighbors lists the N-1 distinct ring successors — the nodes this
// one shares replica ranges with. Predecessors run their own sweeps, so
// pairwise coverage is complete when every node sweeps.
func (n *Node) sweepNeighbors() []nodeRef {
	if len(n.ring) < 2 {
		return nil
	}
	self := 0
	for i, r := range n.ring {
		if r.addr == n.addr {
			self = i
			break
		}
	}
	var out []nodeRef
	for s := 1; s < n.replicas && len(out) < len(n.ring)-1; s++ {
		nb := n.ring[(self+s)%len(n.ring)]
		if nb.addr != n.addr {
			out = append(out, nb)
		}
	}
	return out
}

// sweepNeighbor reconciles one neighbor: digest first (one message pair
// when converged), full key-version exchange plus targeted record transfer
// only on mismatch. An unreachable neighbor counts as one backlog entry —
// state we know we cannot verify.
func (n *Node) sweepNeighbor(nb nodeRef) int {
	recs, subs := n.sharedState(nb.addr)
	sum, cnt := digestOf(recs, subs)
	resp, err := n.ep.Call(nb.addr, SweepMsg{From: n.addr, Sum: sum, Count: cnt})
	if err != nil {
		return 1
	}
	if sr, ok := resp.(SweepResp); ok && sr.Match {
		return 0
	}
	resp, err = n.ep.Call(nb.addr, SweepKeysMsg{From: n.addr, Recs: recs, Subs: subs})
	if err != nil {
		return 1
	}
	kr, ok := resp.(SweepKeysResp)
	if !ok {
		return 1
	}
	div := 0
	for _, rec := range kr.Newer {
		// Full validation applies — a neighbor cannot inject what a
		// client could not write.
		if accepted, stamped, err := n.acceptRecord(rec); err == nil && accepted {
			n.sweepRepairs.Add(1)
			n.notifyWatchers(stamped)
			div++
		}
	}
	for _, key := range kr.Want {
		if rec, ok := n.store.Get(key); ok {
			if _, err := n.ep.Call(nb.addr, PutMsg{Rec: rec, NoReplicate: true}); err == nil {
				n.sweepRepairs.Add(1)
			}
			div++
		}
	}
	n.mergeSubs(kr.Subs)
	return div
}

// handleSweep answers a digest probe with our own digest of the range we
// share with the sender.
func (n *Node) handleSweep(m SweepMsg) (any, error) {
	recs, subs := n.sharedState(m.From)
	sum, cnt := digestOf(recs, subs)
	return SweepResp{Match: sum == m.Sum && cnt == m.Count}, nil
}

// handleSweepKeys reconciles the sender's shared-range state against ours.
func (n *Node) handleSweepKeys(m SweepKeysMsg) (any, error) {
	recs, subs := n.sharedState(m.From)
	local := make(map[Key]uint64, len(recs))
	for _, kv := range recs {
		local[kv.Key] = kv.Version
	}
	var resp SweepKeysResp
	seen := make(map[Key]bool, len(m.Recs))
	for _, kv := range m.Recs {
		seen[kv.Key] = true
		lv, ok := local[kv.Key]
		switch {
		case !ok || lv < kv.Version:
			resp.Want = append(resp.Want, kv.Key)
		case lv > kv.Version:
			if rec, ok := n.store.Get(kv.Key); ok {
				resp.Newer = append(resp.Newer, rec)
			}
		}
	}
	for _, kv := range recs {
		if !seen[kv.Key] {
			if rec, ok := n.store.Get(kv.Key); ok {
				resp.Newer = append(resp.Newer, rec)
			}
		}
	}
	// Watcher sets merge to the union on both sides: we fold the sender's
	// in, the sender folds our pre-merge view from the response.
	resp.Subs = subs
	n.mergeSubs(m.Subs)
	return resp, nil
}

// sharedState snapshots the records and watcher sets in the key range this
// node shares with other, sorted for canonical digesting.
func (n *Node) sharedState(other bus.Address) ([]KeyVer, []SubState) {
	var recs []KeyVer
	n.store.Range(func(k Key, r Record) bool {
		if n.sharesKey(k, other) {
			recs = append(recs, KeyVer{Key: k, Version: r.Version})
		}
		return true
	})
	sort.Slice(recs, func(i, j int) bool { return recs[i].Key.Less(recs[j].Key) })
	var subs []SubState
	for _, k := range n.subs.Keys() {
		if !n.sharesKey(k, other) {
			continue
		}
		var ws []bus.Address
		n.subs.View(k, func(set map[bus.Address]bool, _ bool) {
			for w := range set {
				ws = append(ws, w)
			}
		})
		if len(ws) == 0 {
			continue
		}
		sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
		subs = append(subs, SubState{Key: k, Watchers: ws})
	}
	sort.Slice(subs, func(i, j int) bool { return subs[i].Key.Less(subs[j].Key) })
	return recs, subs
}

// sharesKey reports whether key's replica set contains both this node and
// other.
func (n *Node) sharesKey(key Key, other bus.Address) bool {
	self, oth := false, false
	for _, r := range n.replicaSet(key) {
		if r.addr == n.addr {
			self = true
		}
		if r.addr == other {
			oth = true
		}
	}
	return self && oth
}

// digestOf folds sorted shared state into one canonical digest.
func digestOf(recs []KeyVer, subs []SubState) ([32]byte, uint64) {
	d := replica.NewDigest()
	for _, kv := range recs {
		d.Record(kv.Key[:], kv.Version)
	}
	for _, s := range subs {
		ws := make([]string, len(s.Watchers))
		for i, w := range s.Watchers {
			ws[i] = string(w)
		}
		d.Subs(s.Key[:], ws)
	}
	return d.Sum()
}

// mergeSubs folds foreign watcher sets into ours (union). Spurious watchers
// are harmless — a notify for a coin the watcher no longer holds is ignored
// — while a lost watcher means missed double-spend alarms, so the merge
// only ever adds.
func (n *Node) mergeSubs(states []SubState) {
	for _, st := range states {
		if len(st.Watchers) == 0 {
			continue
		}
		n.subs.Compute(st.Key, func(ws map[bus.Address]bool, exists bool) (map[bus.Address]bool, store.Op) {
			changed := false
			if ws == nil {
				ws = make(map[bus.Address]bool, len(st.Watchers))
			}
			for _, w := range st.Watchers {
				if !ws[w] {
					ws[w] = true
					changed = true
				}
			}
			if !changed {
				return ws, store.OpKeep
			}
			n.journalSubsLocked(st.Key, ws)
			return ws, store.OpSet
		})
	}
}

// replicationHealth is the /healthz check for the repair backlog: a node
// whose backlog has grown for three consecutive sweeps is flagged.
func (n *Node) replicationHealth() (string, error) {
	if g := n.backlogGrowth.Load(); g >= 3 {
		return "", fmt.Errorf("repair backlog growing for %d sweeps (backlog %d)", g, n.repairBacklog.Load())
	}
	return fmt.Sprintf("backlog %d after %d sweeps, %d entries repaired",
		n.repairBacklog.Load(), n.sweepRounds.Load(), n.sweepRepairs.Load()), nil
}
