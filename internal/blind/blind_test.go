package blind

import (
	"errors"
	"math/big"
	"sync"
	"testing"
	"testing/quick"
)

// testSigner is shared across tests: RSA keygen is slow and the key is
// stateless.
var (
	_signerOnce sync.Once
	_signer     *Signer
	_signerErr  error
)

func testSigner(t testing.TB) *Signer {
	t.Helper()
	_signerOnce.Do(func() { _signer, _signerErr = NewSigner(1024) })
	if _signerErr != nil {
		t.Fatal(_signerErr)
	}
	return _signer
}

func TestBlindSignRoundTrip(t *testing.T) {
	s := testSigner(t)
	msg := []byte("coin public key to be certified")
	req, err := NewRequest(s.PublicKey(), msg)
	if err != nil {
		t.Fatal(err)
	}
	signed, err := s.Sign(req.Blinded)
	if err != nil {
		t.Fatal(err)
	}
	sigVal, err := req.Unblind(signed)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s.PublicKey(), msg, sigVal); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestSignerCannotLinkBlindedToMessage(t *testing.T) {
	// The signer sees Blinded; the verifier sees the final signature.
	// Check that the blinded element differs from both the FDH image and
	// the final signature (linkage would need the blinding factor).
	s := testSigner(t)
	msg := []byte("msg")
	req, err := NewRequest(s.PublicKey(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if req.Blinded.Cmp(fdh(s.PublicKey(), msg)) == 0 {
		t.Fatal("blinding did not change the message representative")
	}
	signed, err := s.Sign(req.Blinded)
	if err != nil {
		t.Fatal(err)
	}
	sigVal, err := req.Unblind(signed)
	if err != nil {
		t.Fatal(err)
	}
	if sigVal.Cmp(signed) == 0 {
		t.Fatal("unblinded signature equals blinded response — signer can link")
	}
}

func TestTwoRequestsSameMessageDiffer(t *testing.T) {
	s := testSigner(t)
	msg := []byte("same message")
	r1, err := NewRequest(s.PublicKey(), msg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRequest(s.PublicKey(), msg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Blinded.Cmp(r2.Blinded) == 0 {
		t.Fatal("two blindings of the same message are identical")
	}
}

func TestVerifyRejectsWrongMessage(t *testing.T) {
	s := testSigner(t)
	req, err := NewRequest(s.PublicKey(), []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	signed, err := s.Sign(req.Blinded)
	if err != nil {
		t.Fatal(err)
	}
	sigVal, err := req.Unblind(signed)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(s.PublicKey(), []byte("b"), sigVal); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("got %v, want ErrBadSignature", err)
	}
}

func TestVerifyRejectsGarbage(t *testing.T) {
	s := testSigner(t)
	cases := map[string]*big.Int{
		"nil":       nil,
		"zero":      big.NewInt(0),
		"negative":  big.NewInt(-5),
		"modulus":   new(big.Int).Set(s.PublicKey().N),
		"too large": new(big.Int).Add(s.PublicKey().N, big.NewInt(7)),
		"random":    big.NewInt(123456789),
	}
	for name, v := range cases {
		t.Run(name, func(t *testing.T) {
			if err := Verify(s.PublicKey(), []byte("m"), v); !errors.Is(err, ErrBadSignature) {
				t.Fatalf("got %v, want ErrBadSignature", err)
			}
		})
	}
}

func TestSignRejectsOutOfRange(t *testing.T) {
	s := testSigner(t)
	if _, err := s.Sign(big.NewInt(0)); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("Sign(0) = %v, want ErrMessageRange", err)
	}
	if _, err := s.Sign(new(big.Int).Set(s.PublicKey().N)); !errors.Is(err, ErrMessageRange) {
		t.Fatalf("Sign(N) = %v, want ErrMessageRange", err)
	}
}

func TestUnblindRejectsTamperedResponse(t *testing.T) {
	s := testSigner(t)
	req, err := NewRequest(s.PublicKey(), []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	signed, err := s.Sign(req.Blinded)
	if err != nil {
		t.Fatal(err)
	}
	signed.Add(signed, big.NewInt(1))
	signed.Mod(signed, s.PublicKey().N)
	if signed.Sign() == 0 {
		signed.SetInt64(2)
	}
	if _, err := req.Unblind(signed); err == nil {
		t.Fatal("Unblind accepted a tampered signer response")
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := testSigner(t)
	f := func(msg []byte) bool {
		req, err := NewRequest(s.PublicKey(), msg)
		if err != nil {
			return false
		}
		signed, err := s.Sign(req.Blinded)
		if err != nil {
			return false
		}
		sigVal, err := req.Unblind(signed)
		if err != nil {
			return false
		}
		return Verify(s.PublicKey(), msg, sigVal) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBlindSignRound(b *testing.B) {
	s := testSigner(b)
	msg := []byte("benchmark")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req, err := NewRequest(s.PublicKey(), msg)
		if err != nil {
			b.Fatal(err)
		}
		signed, err := s.Sign(req.Blinded)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := req.Unblind(signed); err != nil {
			b.Fatal(err)
		}
	}
}
