// Package blind implements Chaum's RSA blind signatures.
//
// The paper's introduction credits blind signatures as the classic mechanism
// behind anonymous payment systems; WhoPay itself represents coins as public
// keys instead, but the e-cash comparison example and the coin-shop
// extension can use blind issuance so even the shop cannot link a purchased
// coin to the buyer. The construction is textbook RSA blinding: the
// requester multiplies the message digest by r^e, the signer applies the
// RSA private operation, the requester divides by r.
//
// This is full-domain-hash RSA over the raw group (math/big), independent of
// crypto/rsa's padding modes, because blinding requires access to the bare
// RSA permutation.
package blind

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/big"
)

// Errors returned by this package.
var (
	// ErrBadSignature is returned by Verify for invalid signatures.
	ErrBadSignature = errors.New("blind: invalid signature")
	// ErrMessageRange is returned when a blinded element is out of range.
	ErrMessageRange = errors.New("blind: value outside RSA modulus")
)

// Signer holds an RSA private key and blind-signs whatever it is handed.
// In WhoPay terms this is the broker (or a coin shop) blind-certifying coin
// keys. Safe for concurrent use after construction.
type Signer struct {
	key *rsa.PrivateKey
}

// NewSigner generates a Signer with a fresh RSA key of the given bit size
// (2048 for production, 1024 acceptable in tests for speed).
func NewSigner(bits int) (*Signer, error) {
	key, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("blind: rsa keygen: %w", err)
	}
	return &Signer{key: key}, nil
}

// PublicKey returns the signer's public key; requesters blind against it
// and verifiers check signatures with it.
func (s *Signer) PublicKey() *rsa.PublicKey { return &s.key.PublicKey }

// Sign applies the raw RSA private operation to a blinded element. The
// signer learns nothing about the underlying message.
func (s *Signer) Sign(blinded *big.Int) (*big.Int, error) {
	if blinded.Sign() <= 0 || blinded.Cmp(s.key.N) >= 0 {
		return nil, ErrMessageRange
	}
	return new(big.Int).Exp(blinded, s.key.D, s.key.N), nil
}

// fdh hashes msg into Z_N via a counter-mode full-domain hash.
func fdh(pub *rsa.PublicKey, msg []byte) *big.Int {
	nLen := (pub.N.BitLen() + 7) / 8
	var out []byte
	for counter := byte(0); len(out) < nLen; counter++ {
		h := sha256.New()
		h.Write([]byte{counter})
		h.Write(msg)
		out = h.Sum(out)
	}
	v := new(big.Int).SetBytes(out[:nLen])
	return v.Mod(v, pub.N)
}

// Request is the requester-side state of one blind signing round.
type Request struct {
	pub     *rsa.PublicKey
	msg     []byte
	r       *big.Int
	Blinded *big.Int
}

// NewRequest blinds msg for signing under pub. Send Blinded to the signer.
func NewRequest(pub *rsa.PublicKey, msg []byte) (*Request, error) {
	m := fdh(pub, msg)
	var r *big.Int
	for {
		var err error
		r, err = rand.Int(rand.Reader, pub.N)
		if err != nil {
			return nil, fmt.Errorf("blind: sampling blinding factor: %w", err)
		}
		if r.Sign() > 0 && new(big.Int).GCD(nil, nil, r, pub.N).Cmp(big.NewInt(1)) == 0 {
			break
		}
	}
	e := big.NewInt(int64(pub.E))
	re := new(big.Int).Exp(r, e, pub.N)
	blinded := re.Mul(re, m)
	blinded.Mod(blinded, pub.N)
	return &Request{pub: pub, msg: append([]byte(nil), msg...), r: r, Blinded: blinded}, nil
}

// Unblind turns the signer's response into a plain signature over the
// original message and verifies it before returning.
func (req *Request) Unblind(signed *big.Int) (*big.Int, error) {
	if signed.Sign() <= 0 || signed.Cmp(req.pub.N) >= 0 {
		return nil, ErrMessageRange
	}
	rInv := new(big.Int).ModInverse(req.r, req.pub.N)
	if rInv == nil {
		return nil, errors.New("blind: blinding factor not invertible")
	}
	sigVal := new(big.Int).Mul(signed, rInv)
	sigVal.Mod(sigVal, req.pub.N)
	if err := Verify(req.pub, req.msg, sigVal); err != nil {
		return nil, fmt.Errorf("blind: signer returned bad signature: %w", err)
	}
	return sigVal, nil
}

// Verify checks a (possibly unblinded) signature over msg under pub.
func Verify(pub *rsa.PublicKey, msg []byte, sigVal *big.Int) error {
	if sigVal == nil || sigVal.Sign() <= 0 || sigVal.Cmp(pub.N) >= 0 {
		return ErrBadSignature
	}
	e := big.NewInt(int64(pub.E))
	got := new(big.Int).Exp(sigVal, e, pub.N)
	if got.Cmp(fdh(pub, msg)) != 0 {
		return ErrBadSignature
	}
	return nil
}
