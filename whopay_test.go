package whopay_test

import (
	"testing"

	"whopay"
)

// TestPublicAPIQuickstart drives the facade exactly as the package
// documentation advertises.
func TestPublicAPIQuickstart(t *testing.T) {
	net := whopay.NewMemoryNetwork()
	scheme := whopay.Ed25519()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network:   net,
		Scheme:    scheme,
		Directory: dir,
		GroupPub:  judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	newPeer := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID:         id,
			Network:    net,
			Scheme:     scheme,
			Directory:  dir,
			BrokerAddr: broker.Addr(),
			BrokerPub:  broker.PublicKey(),
			Judge:      judge,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	alice := newPeer("alice")
	bob := newPeer("bob")
	carol := newPeer("carol")

	id, err := alice.Purchase(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.IssueTo(bob.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := bob.TransferTo(carol.Addr(), id); err != nil {
		t.Fatal(err)
	}
	if err := carol.Deposit(id, "carol-payout"); err != nil {
		t.Fatal(err)
	}
	if broker.Balance("carol-payout") != 1 {
		t.Fatalf("balance = %d", broker.Balance("carol-payout"))
	}
	if alice.Ops().Get(whopay.OpTransfer) != 1 {
		t.Fatal("alice did not service the transfer")
	}
}

// TestPolicyDrivenPayments exercises Pay through the facade.
func TestPolicyDrivenPayments(t *testing.T) {
	net := whopay.NewMemoryNetwork()
	scheme := whopay.Ed25519()
	judge, err := whopay.NewJudge(scheme)
	if err != nil {
		t.Fatal(err)
	}
	dir := whopay.NewDirectory()
	broker, err := whopay.NewBroker(whopay.BrokerConfig{
		Network: net, Scheme: scheme, Directory: dir, GroupPub: judge.GroupPublicKey(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()
	mk := func(id string) *whopay.Peer {
		p, err := whopay.NewPeer(whopay.PeerConfig{
			ID: id, Network: net, Scheme: scheme, Directory: dir,
			BrokerAddr: broker.Addr(), BrokerPub: broker.PublicKey(), Judge: judge,
			Prober: net, Presence: net,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	a, b := mk("a"), mk("b")
	method, err := a.Pay(b.Addr(), 1, whopay.PolicyI)
	if err != nil {
		t.Fatal(err)
	}
	if method.String() != "purchase-issue" {
		t.Fatalf("method = %v", method)
	}
	if b.HeldValue() != 1 {
		t.Fatal("payment lost")
	}
	// b can spend the received coin onward.
	method, err = b.Pay(a.Addr(), 1, whopay.PolicyI)
	if err != nil {
		t.Fatal(err)
	}
	if method.String() != "transfer-online" {
		t.Fatalf("second method = %v", method)
	}
}
